//! The global stage (§4.3 of the paper).
//!
//! Once the one-shot local stage has produced a [`ReducedOrderModel`], the
//! unit block becomes an abstract "element" whose DoFs are the displacement
//! components of its surface interpolation nodes. A TSV array is an abstract
//! "mesh" of such elements sharing nodes on common faces; the global
//! stiffness and load are assembled by the standard FEM procedure and the
//! resulting small sparse system is solved with GMRES (the paper's choice)
//! or CG.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use morestress_fem::{DirichletBcs, ReducedSystem};
use morestress_linalg::{
    CgOptions, CsrMatrix, DegradationTrail, FactorCache, MemoryFootprint, PartitionHint,
    PrecondSpec, SolverBackend,
};
use morestress_mesh::{BlockKind, BlockLayout};

use crate::{ReducedOrderModel, RomError};

/// Boundary conditions of the global problem.
#[derive(Clone)]
pub enum GlobalBc {
    /// Scenario 1: the top and bottom surfaces of the array are clamped,
    /// lateral surfaces free.
    ClampedTopBottom,
    /// Scenario 2 (sub-modeling, §4.4): every node on the outer boundary of
    /// the array is assigned the displacement interpolated from a coarse
    /// package-level solution. The closure receives the node position in the
    /// array's local frame (origin at the array's lower corner).
    SubmodelBoundary(Arc<dyn Fn([f64; 3]) -> [f64; 3] + Send + Sync>),
}

impl fmt::Debug for GlobalBc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalBc::ClampedTopBottom => f.write_str("GlobalBc::ClampedTopBottom"),
            GlobalBc::SubmodelBoundary(_) => f.write_str("GlobalBc::SubmodelBoundary(..)"),
        }
    }
}

/// Which solver the global stage uses.
///
/// Every variant maps onto the unified [`SolverBackend`] layer of
/// `morestress-linalg` via [`RomSolver::backend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RomSolver {
    /// Jacobi-preconditioned restarted GMRES (the paper's prescription).
    Gmres {
        /// Relative residual tolerance.
        tol: f64,
    },
    /// Jacobi-preconditioned CG (valid because the Galerkin projection of
    /// the SPD elasticity operator is SPD; compared in the ablation bench).
    Cg {
        /// Relative residual tolerance.
        tol: f64,
    },
    /// Direct sparse Cholesky. The paper prefers iterative solvers here
    /// because *its* global stage solves each system once — but with the
    /// batched [`GlobalStage::solve_many`] path and the
    /// [`FactorCache`], one factorization serves every thermal
    /// load, which flips the economics in favor of the direct solver.
    DirectCholesky,
    /// Direct Cholesky for small reduced systems, preconditioned CG above
    /// the threshold.
    Auto,
    /// Domain-decomposition sharding: the reduced global operator is
    /// partitioned into `shards` interior blocks coupled by a
    /// Schur-complement interface system, each block factored
    /// independently (and concurrently) by the direct Cholesky backend.
    /// This bounds the peak factor memory by the largest *shard* factor
    /// instead of the whole array's, which is what lets array size keep
    /// growing past one factorization's memory. `shards <= 1` degenerates
    /// to [`RomSolver::DirectCholesky`].
    Sharded {
        /// Interior shard count (the plan may produce fewer on operators
        /// too small to separate).
        shards: usize,
    },
}

impl Default for RomSolver {
    fn default() -> Self {
        RomSolver::Gmres { tol: 1e-9 }
    }
}

impl RomSolver {
    /// Maps this selection to a `morestress-linalg` solver backend; every
    /// global-stage solve routes through the returned backend.
    ///
    /// Each call constructs a *fresh* backend — for [`RomSolver::Sharded`]
    /// that means a fresh internal shard cache and no retained previous
    /// preparation, so callers that solve repeatedly must construct once
    /// and reuse (the [`GlobalStage`] builds its backend at construction,
    /// and [`MoreStressSimulator`](crate::MoreStressSimulator) hoists one
    /// backend across all its stages via [`GlobalStage::with_backend`])
    /// rather than calling this per solve.
    pub fn backend(&self) -> Box<dyn SolverBackend> {
        match *self {
            RomSolver::Gmres { tol } => Box::new(morestress_linalg::Gmres::with_tol(tol)),
            RomSolver::Cg { tol } => Box::new(morestress_linalg::Cg {
                opts: CgOptions {
                    tol,
                    max_iter: 50_000,
                },
                precond: PrecondSpec::Jacobi,
            }),
            RomSolver::DirectCholesky => Box::new(morestress_linalg::DirectCholesky::default()),
            RomSolver::Auto => Box::new(morestress_linalg::Auto {
                direct_limit: 20_000,
                tol: 1e-9,
            }),
            RomSolver::Sharded { shards } => {
                Box::new(morestress_linalg::Sharded::new(shards.max(1)))
            }
        }
    }
}

/// The lattice of global interpolation nodes of an array.
///
/// Within block `(I, J)`, local interpolation node `(i, j, k)` maps to
/// lattice coordinates `(I·(nx−1)+i, J·(ny−1)+j, k)`; nodes on shared block
/// faces coincide, which is exactly how the abstract elements are stitched
/// together. Only nodes on some block surface exist ("active" nodes).
#[derive(Debug, Clone)]
pub struct GlobalLattice {
    counts: [usize; 3],
    spacing: [f64; 3],
    interp_counts: [usize; 3],
    /// lattice index -> active node id (usize::MAX if inactive)
    ids: Vec<usize>,
    /// active node id -> lattice coordinates
    coords: Vec<[usize; 3]>,
}

const INACTIVE: usize = usize::MAX;

impl GlobalLattice {
    /// Builds the lattice for `layout` with per-block interpolation counts
    /// `(nx, ny, nz)` and block extents `(p, p, h)`.
    pub fn new(layout: &BlockLayout, interp_counts: [usize; 3], extents: [f64; 3]) -> Self {
        let [nx, ny, nz] = interp_counts;
        let counts = [(nx - 1) * layout.nx() + 1, (ny - 1) * layout.ny() + 1, nz];
        let spacing = [
            extents[0] / (nx - 1) as f64,
            extents[1] / (ny - 1) as f64,
            extents[2] / (nz - 1) as f64,
        ];
        let active = |a: usize, b: usize, c: usize| {
            a.is_multiple_of(nx - 1) || b.is_multiple_of(ny - 1) || c == 0 || c == nz - 1
        };
        let mut ids = vec![INACTIVE; counts[0] * counts[1] * counts[2]];
        let mut coords = Vec::new();
        for c in 0..counts[2] {
            for b in 0..counts[1] {
                for a in 0..counts[0] {
                    if active(a, b, c) {
                        ids[(c * counts[1] + b) * counts[0] + a] = coords.len();
                        coords.push([a, b, c]);
                    }
                }
            }
        }
        Self {
            counts,
            spacing,
            interp_counts,
            ids,
            coords,
        }
    }

    /// Number of active (surface) nodes.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of global DoFs (3 per active node).
    pub fn num_dofs(&self) -> usize {
        3 * self.num_nodes()
    }

    /// Active node id at lattice coordinates, if the node exists.
    pub fn node_at(&self, a: usize, b: usize, c: usize) -> Option<usize> {
        if a >= self.counts[0] || b >= self.counts[1] || c >= self.counts[2] {
            return None;
        }
        match self.ids[(c * self.counts[1] + b) * self.counts[0] + a] {
            INACTIVE => None,
            id => Some(id),
        }
    }

    /// Physical position of active node `id` in the array's local frame.
    pub fn position(&self, id: usize) -> [f64; 3] {
        let [a, b, c] = self.coords[id];
        [
            a as f64 * self.spacing[0],
            b as f64 * self.spacing[1],
            c as f64 * self.spacing[2],
        ]
    }

    /// Whether active node `id` lies on the outer boundary of the array
    /// (any of the 6 outer faces).
    pub fn is_outer_boundary(&self, id: usize) -> bool {
        let [a, b, c] = self.coords[id];
        a == 0
            || a == self.counts[0] - 1
            || b == 0
            || b == self.counts[1] - 1
            || c == 0
            || c == self.counts[2] - 1
    }

    /// Whether active node `id` lies on the top or bottom surface.
    pub fn is_top_or_bottom(&self, id: usize) -> bool {
        let c = self.coords[id][2];
        c == 0 || c == self.counts[2] - 1
    }

    /// The active node ids of block `(bi, bj)`, in the canonical element-DoF
    /// order (the [`InterpolationGrid::surface_nodes`] order).
    ///
    /// [`InterpolationGrid::surface_nodes`]: crate::InterpolationGrid::surface_nodes
    pub fn block_nodes(&self, bi: usize, bj: usize) -> Vec<usize> {
        let [nx, ny, nz] = self.interp_counts;
        let mut out = Vec::new();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let surface =
                        i == 0 || i == nx - 1 || j == 0 || j == ny - 1 || k == 0 || k == nz - 1;
                    if surface {
                        let id = self
                            .node_at(bi * (nx - 1) + i, bj * (ny - 1) + j, k)
                            .expect("block surface nodes are always active");
                        out.push(id);
                    }
                }
            }
        }
        out
    }
}

/// Cost accounting of one global-stage solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalStats {
    /// Wall-clock time of assembly + constraint reduction + solve.
    pub wall_time: Duration,
    /// Analytic peak heap estimate (bytes).
    pub peak_bytes: usize,
    /// Global DoFs before constraints.
    pub total_dofs: usize,
    /// Free DoFs after constraints.
    pub free_dofs: usize,
    /// Stored nonzeros of the reduced global operator.
    pub nnz: usize,
    /// Iterations of the iterative solver (0 for direct solves; for a
    /// batched solve: summed over the batch).
    pub iterations: usize,
    /// Name of the solver backend that ran ("cholesky", "cg", "gmres";
    /// "none" when every DoF was prescribed).
    pub backend: &'static str,
    /// Effective [`WorkPool`](morestress_linalg::WorkPool) worker slots the
    /// batched solve ran on (1 for serial and fully-constrained solves).
    pub workers: usize,
    /// Worker slots the one-time numeric factorization behind this solve
    /// used (1 for iterative backends, serial factorization, warm-cache
    /// hits prepared serially, and fully-constrained solves).
    pub factor_workers: usize,
    /// Resolved dense-microkernel name (`"scalar"`, `"blocked"`, `"avx2"`)
    /// behind the direct factorization, after runtime CPU-feature
    /// dispatch; `None` for iterative backends, the scalar reference
    /// factorization and fully-constrained solves.
    pub kernel: Option<&'static str>,
    /// Interior shards of the sharded global solve (1 for monolithic
    /// backends and fully-constrained solves).
    pub shards: usize,
    /// Interface DoFs coupling the shards (0 unless sharded).
    pub interface_dofs: usize,
    /// Largest single-shard factor footprint in bytes (0 unless sharded) —
    /// the peak factor memory sharding bounds.
    pub shard_factor_bytes: usize,
    /// Interior shards whose factor + clique were (re)computed by the
    /// preparation behind this solve: all of them on a from-scratch
    /// sharded prepare, only the perturbed ones on the incremental
    /// re-preparation a pattern-matching
    /// [`resolve_perturbed`](crate::MoreStressSimulator::resolve_perturbed)
    /// takes. A warm [`FactorCache`] hit repeats the counters of the
    /// preparation that built the cached solver. 0 for monolithic
    /// backends and fully-constrained solves.
    pub shards_refactored: usize,
    /// Interior shards whose factor and stored clique the incremental
    /// sharded re-preparation reused intact
    /// (`shards_refactored + shards_reused == shards` for a sharded
    /// prepare; 0 otherwise).
    pub shards_reused: usize,
    /// Interior shards (plus one for the interface system, if affected)
    /// whose direct factorization broke down and were contained by the
    /// resilience ladder instead of aborting the solve. 0 on every clean
    /// solve.
    pub shards_degraded: usize,
    /// Verified relative residual of the solve (worst over the batch),
    /// when the backend's verification policy — or the resilient ladder's
    /// self-verification — computed one. `None` when verification is off.
    pub verified_residual: Option<f64>,
    /// Structured history of every recovery the solve performed (ladder
    /// escalations, stale-cache rebuilds). Empty on the clean path.
    pub degradation: DegradationTrail,
    /// Quality accounting of the shard partition behind a sharded solve —
    /// per-shard rows and estimated factor work, balance ratio, interface
    /// fraction, and whether the geometry-aware planner produced it.
    /// `None` for monolithic backends and fully-constrained solves.
    pub plan_stats: Option<morestress_linalg::ShardPlanStats>,
}

/// The solved global problem of one array.
#[derive(Debug, Clone)]
pub struct GlobalSolution {
    lattice: GlobalLattice,
    /// Displacements of all active nodes (3 per node).
    nodal: Vec<f64>,
    /// Cost accounting.
    pub stats: GlobalStats,
}

impl GlobalSolution {
    /// The global lattice of the solved problem.
    pub fn lattice(&self) -> &GlobalLattice {
        &self.lattice
    }

    /// The full nodal displacement vector (3 DoFs per active node).
    pub fn nodal_displacement(&self) -> &[f64] {
        &self.nodal
    }

    /// The element-DoF vector of block `(bi, bj)` in canonical order, ready
    /// for [`ReducedOrderModel::reconstruct_displacement`].
    pub fn element_dofs(&self, bi: usize, bj: usize) -> Vec<f64> {
        let nodes = self.lattice.block_nodes(bi, bj);
        let mut out = Vec::with_capacity(3 * nodes.len());
        for node in nodes {
            out.extend_from_slice(&self.nodal[3 * node..3 * node + 3]);
        }
        out
    }
}

/// The global stage: assembles and solves the reduced array problem.
#[derive(Debug)]
pub struct GlobalStage<'a> {
    rom_tsv: &'a ReducedOrderModel,
    rom_dummy: Option<&'a ReducedOrderModel>,
    /// Backend built once from the [`RomSolver`] selection and reused by
    /// every solve through this stage, so backend-internal state (the
    /// `Sharded` shard cache and retained previous preparation) survives
    /// across repeated prepares.
    backend: Box<dyn SolverBackend>,
    /// Caller-owned backend overriding `backend` when set — how the
    /// simulator shares one backend across all the stages it builds.
    external_backend: Option<&'a dyn SolverBackend>,
    cache: Option<&'a FactorCache>,
    threads: usize,
}

impl<'a> GlobalStage<'a> {
    /// Creates a global stage using one ROM for TSV blocks.
    pub fn new(rom_tsv: &'a ReducedOrderModel) -> Self {
        Self {
            rom_tsv,
            rom_dummy: None,
            backend: RomSolver::default().backend(),
            external_backend: None,
            cache: None,
            threads: morestress_linalg::default_solve_threads(),
        }
    }

    /// Registers a [`FactorCache`]: repeated solves over the same assembled
    /// operator (same layout, interpolation and boundary-condition kind)
    /// reuse one prepared factorization / preconditioner.
    pub fn with_cache(mut self, cache: &'a FactorCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the worker-slot cap for the batched
    /// [`solve_many`](Self::solve_many) path.
    ///
    /// This overrides the default (the current
    /// [`WorkPool`](morestress_linalg::WorkPool) cap) downwards; the solve
    /// runs on the shared pool either way, so the override can narrow a
    /// call but never adds threads beyond the pool cap.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Registers the dummy-block ROM (required for layouts containing
    /// [`BlockKind::Dummy`]).
    ///
    /// # Errors
    ///
    /// [`RomError::Mismatch`] if the dummy ROM was built with different
    /// geometry/resolution/interpolation than the TSV ROM.
    pub fn with_dummy(mut self, rom_dummy: &'a ReducedOrderModel) -> Result<Self, RomError> {
        self.rom_tsv.check_compatible(rom_dummy)?;
        self.rom_dummy = Some(rom_dummy);
        Ok(self)
    }

    /// Selects the global solver (default: the paper's GMRES). The backend
    /// is constructed here, once, and reused by every solve through this
    /// stage.
    pub fn with_solver(mut self, solver: RomSolver) -> Self {
        self.backend = solver.backend();
        self
    }

    /// Routes every solve through a caller-owned backend instead of one
    /// constructed from the [`RomSolver`] selection — so prepared state
    /// living *inside* the backend (the `Sharded` shard cache, and the
    /// retained previous preparation behind the incremental
    /// re-factorization) survives beyond this stage's lifetime.
    /// [`MoreStressSimulator`](crate::MoreStressSimulator) hoists its one
    /// backend through here.
    pub fn with_backend(mut self, backend: &'a dyn SolverBackend) -> Self {
        self.external_backend = Some(backend);
        self
    }

    /// Assembles and solves the global problem for `layout` under thermal
    /// load `delta_t` and boundary conditions `bc`.
    ///
    /// # Errors
    ///
    /// [`RomError::Mismatch`] if the layout contains dummy blocks but no
    /// dummy ROM is registered; solver failures as [`RomError::Linalg`].
    pub fn solve(
        &self,
        layout: &BlockLayout,
        delta_t: f64,
        bc: &GlobalBc,
    ) -> Result<GlobalSolution, RomError> {
        let mut solutions = self.solve_many(layout, &[delta_t], bc)?;
        Ok(solutions.pop().expect("one load in, one solution out"))
    }

    /// Assembles and solves the global problem for several thermal loads at
    /// once: one assembly, one constraint reduction, one solver preparation
    /// (reused from the [`FactorCache`] when registered), then a
    /// task-parallel batched solve over all loads.
    ///
    /// The assembled operator and the prescribed boundary data do not
    /// depend on `ΔT` (the load vector is linear in it), so the paper's
    /// many-load workloads collapse to one factorization plus `k` pairs of
    /// triangular sweeps. Returns one [`GlobalSolution`] per entry of
    /// `delta_ts`, in order; the reported [`GlobalStats`] are the batch
    /// aggregate (shared wall time, summed iterations).
    ///
    /// # Errors
    ///
    /// Same as [`GlobalStage::solve`].
    pub fn solve_many(
        &self,
        layout: &BlockLayout,
        delta_ts: &[f64],
        bc: &GlobalBc,
    ) -> Result<Vec<GlobalSolution>, RomError> {
        let start = Instant::now();
        if layout.count(BlockKind::Dummy) > 0 && self.rom_dummy.is_none() {
            return Err(RomError::Mismatch(
                "layout contains dummy blocks but no dummy ROM is registered".into(),
            ));
        }
        let interp = self.rom_tsv.interpolation();
        let geom = self.rom_tsv.geometry();
        let extents = [geom.pitch, geom.pitch, geom.height];
        let lattice = GlobalLattice::new(layout, interp.counts(), extents);
        let ndof = lattice.num_dofs();

        // --- Node adjacency → DoF sparsity pattern ------------------------
        let num_nodes = lattice.num_nodes();
        let mut node_adj: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
        // Per node: the (block index, node position within the block's
        // canonical node list) pairs that contribute to it — the transposed
        // incidence the row-parallel scatter below consumes.
        let mut node_contrib: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_nodes];
        let mut block_nodes_cache: Vec<Vec<usize>> = Vec::with_capacity(layout.nx() * layout.ny());
        for bj in 0..layout.ny() {
            for bi in 0..layout.nx() {
                let b = block_nodes_cache.len();
                let nodes = lattice.block_nodes(bi, bj);
                for (ln, &a) in nodes.iter().enumerate() {
                    node_adj[a].extend_from_slice(&nodes);
                    node_contrib[a].push((b as u32, ln as u32));
                }
                block_nodes_cache.push(nodes);
            }
        }
        for list in &mut node_adj {
            list.sort_unstable();
            list.dedup();
        }
        // The three DoF rows of a node share one column structure, so the
        // CSR arrays are emitted directly (sorted by construction — no
        // per-entry validation or intermediate Vec<Vec> needed).
        let mut row_ptr = Vec::with_capacity(ndof + 1);
        row_ptr.push(0usize);
        let nnz_upper: usize = node_adj.iter().map(|l| 9 * l.len()).sum();
        let mut col_idx = Vec::with_capacity(nnz_upper);
        for neighbors in &node_adj {
            for _ in 0..3 {
                for &m in neighbors {
                    col_idx.extend_from_slice(&[3 * m, 3 * m + 1, 3 * m + 2]);
                }
                row_ptr.push(col_idx.len());
            }
        }
        let nnz = col_idx.len();
        let mut a_global =
            CsrMatrix::from_raw_trusted(ndof, ndof, row_ptr.clone(), col_idx, vec![0.0; nnz]);
        // Unit (ΔT = 1) load: the thermal load is linear in ΔT, so every
        // requested load is a scalar multiple of this vector.
        let mut b_unit = vec![0.0; ndof];

        // --- Standard assembly over abstract elements ----------------------
        // Element → global DoF scatter, node-parallel on the shared pool:
        // every node owns its three (contiguous) matrix rows, so tasks
        // write disjoint value ranges, and contributions are accumulated
        // in block order per row — bitwise identical at every pool cap.
        let block_dofs: Vec<Vec<usize>> = block_nodes_cache
            .iter()
            .map(|nodes| {
                nodes
                    .iter()
                    .flat_map(|&m| [3 * m, 3 * m + 1, 3 * m + 2])
                    .collect()
            })
            .collect();
        let block_rom: Vec<&ReducedOrderModel> = (0..layout.ny())
            .flat_map(|bj| (0..layout.nx()).map(move |bi| (bi, bj)))
            .map(|(bi, bj)| match layout.kind(bi, bj) {
                BlockKind::Tsv => self.rom_tsv,
                BlockKind::Dummy => self.rom_dummy.expect("checked above"),
            })
            .collect();
        {
            // Split the value array into one contiguous slice per node
            // (its three rows), so tasks can write lock-free-by-ownership
            // behind cheap uncontended mutexes.
            let mut node_rows: Vec<Mutex<&mut [f64]>> = Vec::with_capacity(num_nodes);
            let mut rest = a_global.values_mut();
            for m in 0..num_nodes {
                let len = row_ptr[3 * m + 3] - row_ptr[3 * m];
                let (head, tail) = rest.split_at_mut(len);
                node_rows.push(Mutex::new(head));
                rest = tail;
            }
            let pool = morestress_linalg::WorkPool::current();
            pool.scope_chunks_with(
                self.threads,
                num_nodes,
                || vec![usize::MAX; ndof],
                |slot_of_col, m| {
                    let neighbors = &node_adj[m];
                    // Column offsets within one DoF row of this node.
                    for (slot, &nb) in neighbors.iter().enumerate() {
                        slot_of_col[3 * nb] = 3 * slot;
                        slot_of_col[3 * nb + 1] = 3 * slot + 1;
                        slot_of_col[3 * nb + 2] = 3 * slot + 2;
                    }
                    let row_len = 3 * neighbors.len();
                    let mut vals = node_rows[m].lock().expect("node row slice poisoned");
                    for &(b, ln) in &node_contrib[m] {
                        let rom = block_rom[b as usize];
                        let a_elem = rom.element_stiffness();
                        let dofs = &block_dofs[b as usize];
                        for comp in 0..3 {
                            let erow = a_elem.row(3 * ln as usize + comp);
                            let dst = &mut vals[comp * row_len..(comp + 1) * row_len];
                            for (c, &gc) in dofs.iter().enumerate() {
                                let v = erow[c];
                                if v != 0.0 {
                                    dst[slot_of_col[gc]] += v;
                                }
                            }
                        }
                    }
                    drop(vals);
                    for &nb in neighbors {
                        slot_of_col[3 * nb] = usize::MAX;
                        slot_of_col[3 * nb + 1] = usize::MAX;
                        slot_of_col[3 * nb + 2] = usize::MAX;
                    }
                },
            );
        }
        drop(node_adj);
        drop(node_contrib);
        // The unit load is a cheap serial scatter-add.
        for (b, dofs) in block_dofs.iter().enumerate() {
            let b_elem = block_rom[b].element_load();
            for (r, &gr) in dofs.iter().enumerate() {
                b_unit[gr] += b_elem[r];
            }
        }

        // --- Boundary conditions (lifting, Eq. 13) -------------------------
        let mut bcs = DirichletBcs::new();
        match bc {
            GlobalBc::ClampedTopBottom => {
                for id in 0..lattice.num_nodes() {
                    if lattice.is_top_or_bottom(id) {
                        bcs.set_node(id, [0.0; 3]);
                    }
                }
            }
            GlobalBc::SubmodelBoundary(coarse) => {
                for id in 0..lattice.num_nodes() {
                    if lattice.is_outer_boundary(id) {
                        bcs.set_node(id, coarse(lattice.position(id)));
                    }
                }
            }
        }
        // A fully-constrained problem (e.g. a single block under sub-model
        // boundary conditions) has no free DoFs: the nodal solution is just
        // the prescribed data, identically for every thermal load.
        if bcs.len() == ndof {
            let mut nodal = vec![0.0; ndof];
            for (dof, v) in bcs.iter() {
                nodal[dof] = v;
            }
            let stats = GlobalStats {
                wall_time: start.elapsed(),
                peak_bytes: a_global.heap_bytes() + b_unit.heap_bytes(),
                total_dofs: ndof,
                free_dofs: 0,
                nnz: 0,
                iterations: 0,
                backend: "none",
                workers: 1,
                factor_workers: 1,
                kernel: None,
                shards: 1,
                interface_dofs: 0,
                shard_factor_bytes: 0,
                shards_refactored: 0,
                shards_reused: 0,
                shards_degraded: 0,
                verified_residual: None,
                degradation: DegradationTrail::new(),
                plan_stats: None,
            };
            return Ok(delta_ts
                .iter()
                .map(|_| GlobalSolution {
                    lattice: lattice.clone(),
                    nodal: nodal.clone(),
                    stats,
                })
                .collect());
        }

        // Reduce once with a zero load: `reduced.rhs` is then exactly the
        // load-independent lifting term `−A_fb u_b`, and every requested
        // load is a scalar multiple of the unit load.
        let zero = vec![0.0; ndof];
        let reduced = ReducedSystem::new(&a_global, &zero, &bcs)?;
        let rhs_set = reduced.rhs_for_scaled_loads(&b_unit, delta_ts);

        let mut peak_bytes = a_global.heap_bytes()
            + b_unit.heap_bytes()
            + reduced.a_ff.heap_bytes()
            + rhs_set
                .iter()
                .map(MemoryFootprint::heap_bytes)
                .sum::<usize>()
            + self.rom_tsv.heap_bytes()
            + self.rom_dummy.map_or(0, MemoryFootprint::heap_bytes);

        // --- Solve through the unified backend layer -----------------------
        let backend: &dyn SolverBackend = match self.external_backend {
            Some(external) => external,
            None => &*self.backend,
        };
        // Geometry hint for the sharded backend's partitioner: each free DoF
        // maps to the inclusive block-grid footprint of its lattice node, so
        // the planner can cut the reduced operator along block boundaries
        // instead of searching the (dense) reduced sparsity graph. Backends
        // that cannot use it ignore it.
        let grid = [layout.nx(), layout.ny()];
        let spans = reduced
            .free_dofs
            .iter()
            .map(|&dof| {
                let [cx, cy, _] = lattice.coords[dof / 3];
                let sx = interp.block_span(0, cx, grid[0]);
                let sy = interp.block_span(1, cy, grid[1]);
                [sx[0], sx[1], sy[0], sy[1]]
            })
            .collect();
        backend.set_partition_hint(Some(Arc::new(PartitionHint::new(grid, spans))));
        let batch = match self.cache {
            // The cache-backed path self-heals: a cached factor that fails
            // its solve (or needs more ladder recovery than its own
            // preparation did) is invalidated, re-prepared from scratch and
            // retried once, with the rebuild recorded as a `Rung::Rebuilt`
            // step in the report's degradation trail.
            Some(cache) => {
                cache
                    .solve_many_healing(backend, &reduced.a_ff, &rhs_set, self.threads)?
                    .0
            }
            None => backend
                .prepare(Arc::clone(&reduced.a_ff))?
                .solve_many(&rhs_set, self.threads)?,
        };
        peak_bytes += batch.report.solver_bytes;

        let stats = GlobalStats {
            wall_time: start.elapsed(),
            peak_bytes,
            total_dofs: ndof,
            free_dofs: reduced.num_free(),
            nnz: reduced.a_ff.nnz(),
            iterations: batch.report.iterations.unwrap_or(0),
            backend: batch.report.backend,
            workers: batch.report.workers,
            factor_workers: batch.report.factor_workers,
            kernel: batch.report.kernel,
            shards: batch.report.shards,
            interface_dofs: batch.report.interface_dofs,
            shard_factor_bytes: batch.report.shard_factor_bytes,
            shards_refactored: batch.report.shards_refactored,
            shards_reused: batch.report.shards_reused,
            shards_degraded: batch.report.shards_degraded,
            verified_residual: batch.report.verified_residual,
            degradation: batch.report.degradation,
            plan_stats: batch.report.plan_stats,
        };
        Ok(batch
            .xs
            .into_iter()
            .map(|x| GlobalSolution {
                lattice: lattice.clone(),
                nodal: reduced.expand(&x),
                stats,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterpolationGrid, LocalStage, LocalStageOptions};
    use morestress_fem::MaterialSet;
    use morestress_mesh::{BlockResolution, TsvGeometry};

    fn rom(kind: BlockKind) -> ReducedOrderModel {
        let geom = TsvGeometry::paper_defaults(15.0);
        LocalStage::new(
            &geom,
            &BlockResolution::coarse(),
            InterpolationGrid::new([3, 3, 3]),
            &MaterialSet::tsv_defaults(),
            kind,
        )
        .build(&LocalStageOptions { threads: 4 })
        .unwrap()
    }

    #[test]
    fn lattice_counts_and_sharing() {
        let layout = BlockLayout::uniform(3, 2, BlockKind::Tsv);
        let lat = GlobalLattice::new(&layout, [4, 4, 4], [15.0, 15.0, 50.0]);
        // gx = 3*3+1 = 10, gy = 3*2+1 = 7, gz = 4.
        // Active: a%3==0 or b%3==0 or c in {0,3}.
        let mut count = 0;
        for c in 0..4 {
            for b in 0..7 {
                for a in 0..10 {
                    if a % 3 == 0 || b % 3 == 0 || c == 0 || c == 3 {
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(lat.num_nodes(), count);
        // Adjacent blocks share their common face nodes.
        let left = lat.block_nodes(0, 0);
        let right = lat.block_nodes(1, 0);
        let shared: Vec<_> = left.iter().filter(|n| right.contains(n)).collect();
        assert_eq!(shared.len(), 16, "4×4 nodes on the shared face");
    }

    #[test]
    fn block_nodes_match_interpolation_order() {
        let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
        let lat = GlobalLattice::new(&layout, [3, 3, 3], [15.0, 15.0, 50.0]);
        let nodes = lat.block_nodes(1, 1);
        let grid = InterpolationGrid::new([3, 3, 3]);
        assert_eq!(nodes.len(), grid.num_surface_nodes());
        // First node of block (1,1) sits at lattice (2,2,0) => position (15,15,0).
        let p = lat.position(nodes[0]);
        assert_eq!(p, [15.0, 15.0, 0.0]);
    }

    #[test]
    fn single_block_with_clamped_everything_matches_local_thermal() {
        // With every surface node clamped (sub-model bc of zero), the global
        // solution for one block is u = ΔT·f_T exactly.
        let rom = rom(BlockKind::Tsv);
        let layout = BlockLayout::uniform(1, 1, BlockKind::Tsv);
        let zero = GlobalBc::SubmodelBoundary(Arc::new(|_| [0.0; 3]));
        let sol = GlobalStage::new(&rom)
            .solve(&layout, -250.0, &zero)
            .unwrap();
        let dofs = sol.element_dofs(0, 0);
        assert!(dofs.iter().all(|&v| v == 0.0), "all element DoFs clamped");
        let u = rom.reconstruct_displacement(&dofs, -250.0);
        let ft = rom.thermal_basis();
        for (a, b) in u.iter().zip(ft) {
            assert!((a - b * -250.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clamped_array_solution_is_symmetric() {
        let rom = rom(BlockKind::Tsv);
        let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
        let sol = GlobalStage::new(&rom)
            .solve(&layout, -250.0, &GlobalBc::ClampedTopBottom)
            .unwrap();
        assert!(sol.stats.iterations > 0);
        // 4-fold symmetry: the x-displacement at mirrored lattice positions
        // must be opposite.
        let lat = sol.lattice();
        for id in 0..lat.num_nodes() {
            let p = lat.position(id);
            let mirrored = [30.0 - p[0], p[1], p[2]];
            let m = (0..lat.num_nodes())
                .find(|&q| {
                    let pq = lat.position(q);
                    (pq[0] - mirrored[0]).abs() < 1e-9
                        && (pq[1] - mirrored[1]).abs() < 1e-9
                        && (pq[2] - mirrored[2]).abs() < 1e-9
                })
                .unwrap();
            let ux = sol.nodal_displacement()[3 * id];
            let um = sol.nodal_displacement()[3 * m];
            assert!(
                (ux + um).abs() < 1e-7,
                "mirror antisymmetry violated: {ux} vs {um}"
            );
        }
    }

    #[test]
    fn gmres_and_cg_agree() {
        let rom = rom(BlockKind::Tsv);
        let layout = BlockLayout::uniform(2, 1, BlockKind::Tsv);
        let a = GlobalStage::new(&rom)
            .with_solver(RomSolver::Gmres { tol: 1e-11 })
            .solve(&layout, -250.0, &GlobalBc::ClampedTopBottom)
            .unwrap();
        let b = GlobalStage::new(&rom)
            .with_solver(RomSolver::Cg { tol: 1e-11 })
            .solve(&layout, -250.0, &GlobalBc::ClampedTopBottom)
            .unwrap();
        let peak = a
            .nodal_displacement()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        for (p, q) in a.nodal_displacement().iter().zip(b.nodal_displacement()) {
            assert!((p - q).abs() < 1e-6 * peak.max(1e-30));
        }
    }

    #[test]
    fn dummy_layout_without_dummy_rom_is_rejected() {
        let rom = rom(BlockKind::Tsv);
        let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv).padded(1);
        let err = GlobalStage::new(&rom)
            .solve(&layout, -250.0, &GlobalBc::ClampedTopBottom)
            .unwrap_err();
        assert!(matches!(err, RomError::Mismatch(_)));
    }

    #[test]
    fn hybrid_assembly_with_dummy_ring_runs() {
        let tsv = rom(BlockKind::Tsv);
        let dummy = rom(BlockKind::Dummy);
        let layout = BlockLayout::uniform(1, 1, BlockKind::Tsv).padded(1);
        let zero = GlobalBc::SubmodelBoundary(Arc::new(|_| [0.0; 3]));
        let sol = GlobalStage::new(&tsv)
            .with_dummy(&dummy)
            .unwrap()
            .solve(&layout, -250.0, &zero)
            .unwrap();
        // Interior nodes (on the center block's faces) are now free and
        // nonzero because the thermal load deforms the assembly.
        let peak = sol
            .nodal_displacement()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(peak > 0.0);
    }
}
