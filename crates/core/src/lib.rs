//! **MORE-Stress**: Model Order Reduction based Efficient Numerical
//! Algorithm for Thermal Stress Simulation of TSV Arrays in 2.5D/3D IC
//! (DATE 2025) — the core algorithm.
//!
//! TSV arrays are periodic: every unit block (one Cu via + liner in a p×p×h
//! silicon cell) is identical. MORE-Stress exploits this in two stages:
//!
//! * **One-shot local stage** ([`LocalStage`]) — a coarse grid of
//!   `(nx, ny, nz)` Lagrange interpolation nodes is placed on the *surface*
//!   of the unit block ([`InterpolationGrid`]). For every surface-node DoF,
//!   a Dirichlet problem on the block's fine mesh is solved (one sparse
//!   Cholesky factorization, n+1 right-hand sides, solved in parallel); the
//!   solutions are the *local basis functions* `f_0 … f_{n−1}` plus the
//!   thermal bubble `f_T` (Eq. 15). Galerkin projection yields the abstract
//!   element matrices `A_elem = FᵀA_local F`, `b_elem = Fᵀ b_local`
//!   (Eqs. 18–19), stored in a [`ReducedOrderModel`].
//! * **Global stage** ([`GlobalStage`]) — the array becomes an abstract
//!   mesh of such elements sharing surface nodes; standard assembly
//!   produces a small sparse system solved by GMRES (the paper's choice) or
//!   CG. Displacement and stress anywhere are reconstructed from the basis.
//!
//! The only approximation is the Lagrange interpolation of the block
//! boundary displacement, so the error decays rapidly as `(nx, ny, nz)`
//! grows (Table 3 / Fig. 6 of the paper).
//!
//! Sub-modeling (§4.4) is supported through [`GlobalBc::SubmodelBoundary`]:
//! displacements interpolated from a coarse package-level solution are
//! imposed on the array boundary, and dummy (pure-Si) blocks can pad the
//! array via [`BlockLayout::padded`](morestress_mesh::BlockLayout::padded).
//!
//! # Quickstart
//!
//! ```
//! use morestress_core::{GlobalBc, MoreStressSimulator};
//! use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};
//!
//! # fn main() -> Result<(), morestress_core::RomError> {
//! let geom = TsvGeometry::paper_defaults(15.0);
//! let sim = MoreStressSimulator::builder(&geom).build()?;
//! // Solve a 4×4 standalone array under the paper's thermal load.
//! let layout = BlockLayout::uniform(4, 4, BlockKind::Tsv);
//! let solution = sim.solve_array(&layout, -250.0, &GlobalBc::ClampedTopBottom)?;
//! let field = sim.sample_midplane(&layout, &solution, -250.0, 10)?;
//! assert!(field.max() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops over parallel arrays are the FEM idiom

mod error;
mod global;
mod interp;
mod local;
mod model;
mod reconstruct;
mod simulator;

pub use error::RomError;
pub use global::{GlobalBc, GlobalLattice, GlobalSolution, GlobalStage, GlobalStats, RomSolver};
pub use interp::{lagrange_weights, InterpolationGrid};
pub use local::{LocalStage, LocalStageOptions, LocalStageStats};
pub use model::ReducedOrderModel;
pub use reconstruct::sample_array_von_mises;
pub use simulator::{MoreStressSimulator, SimulatorBuilder, SimulatorOptions};
