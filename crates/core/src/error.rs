use std::error::Error;
use std::fmt;

use morestress_fem::FemError;
use morestress_linalg::LinalgError;

/// Errors produced by the MORE-Stress algorithm.
#[derive(Debug)]
#[non_exhaustive]
pub enum RomError {
    /// The underlying FEM layer failed (assembly, materials, constraints).
    Fem(FemError),
    /// A linear algebra kernel failed (factorization, iterative solve).
    Linalg(LinalgError),
    /// The reduced-order model and the requested problem are inconsistent
    /// (e.g. TSV and dummy ROMs built with different grids).
    Mismatch(String),
    /// ROM (de)serialization failed.
    Io(std::io::Error),
    /// A serialized ROM file is malformed or of an unsupported version.
    Format(String),
}

impl fmt::Display for RomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RomError::Fem(e) => write!(f, "FEM layer error: {e}"),
            RomError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            RomError::Mismatch(msg) => write!(f, "inconsistent ROM inputs: {msg}"),
            RomError::Io(e) => write!(f, "ROM i/o error: {e}"),
            RomError::Format(msg) => write!(f, "malformed ROM file: {msg}"),
        }
    }
}

impl Error for RomError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RomError::Fem(e) => Some(e),
            RomError::Linalg(e) => Some(e),
            RomError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FemError> for RomError {
    fn from(e: FemError) -> Self {
        RomError::Fem(e)
    }
}

impl From<LinalgError> for RomError {
    fn from(e: LinalgError) -> Self {
        RomError::Linalg(e)
    }
}

impl From<std::io::Error> for RomError {
    fn from(e: std::io::Error) -> Self {
        RomError::Io(e)
    }
}
