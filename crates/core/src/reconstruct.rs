//! Field reconstruction from the reduced solution.
//!
//! After the global solve, the displacement of any unit block is the linear
//! combination of Eq. 15; stress follows from the constitutive law exactly
//! as in the full-FEM reference. The paper evaluates every method on the
//! gridded von Mises stress of the z = h/2 cut plane — this module samples
//! that field for a whole array, reconstructing only the mesh slab that the
//! cut plane touches. Blocks are reconstructed in parallel on the shared
//! [`WorkPool`]; each block writes its own disjoint tile, so the sampled
//! field is identical for every pool size.

use std::sync::Mutex;

use morestress_fem::{stress_at, PlaneGrid, ScalarField2d};
use morestress_linalg::WorkPool;
use morestress_mesh::{BlockKind, BlockLayout};

use crate::{GlobalSolution, ReducedOrderModel, RomError};

/// One block's sampled tile, parked in its slot until stitching.
type TileSlot = Mutex<Option<Result<Vec<f64>, RomError>>>;

/// Samples the von Mises stress of a solved array on the mid-height cut
/// plane, with `samples_per_block × samples_per_block` points per unit block
/// (the paper uses 100×100), block-parallel on the current [`WorkPool`].
///
/// # Errors
///
/// [`RomError::Mismatch`] if the layout needs a dummy ROM that is missing,
/// or stress recovery fails.
///
/// # Panics
///
/// Panics if `samples_per_block == 0`.
pub fn sample_array_von_mises(
    rom_tsv: &ReducedOrderModel,
    rom_dummy: Option<&ReducedOrderModel>,
    layout: &BlockLayout,
    solution: &GlobalSolution,
    delta_t: f64,
    samples_per_block: usize,
) -> Result<ScalarField2d, RomError> {
    assert!(samples_per_block > 0, "need at least one sample per block");
    if layout.count(BlockKind::Dummy) > 0 && rom_dummy.is_none() {
        return Err(RomError::Mismatch(
            "layout contains dummy blocks but no dummy ROM was supplied".into(),
        ));
    }
    let geom = rom_tsv.geometry();
    let p = geom.pitch;
    let z_mid = 0.5 * geom.height;
    let grid = PlaneGrid::new(
        [0.0, 0.0],
        [p * layout.nx() as f64, p * layout.ny() as f64],
        z_mid,
        samples_per_block * layout.nx(),
        samples_per_block * layout.ny(),
    );
    let mut values = vec![f64::NAN; grid.num_points()];

    // Nodes of the mesh slab containing the cut plane (the two lattice
    // planes bounding the cell that `locate` resolves to).
    let slab_nodes: Vec<usize> = {
        let mesh = rom_tsv.mesh();
        let (_, _, zg) = mesh.grids();
        let ck = zg.locate(z_mid);
        let mut nodes = mesh.plane_nodes(2, ck);
        nodes.extend(mesh.plane_nodes(2, ck + 1));
        nodes
    };

    // One task per block: reconstruct the block's slab displacement and
    // sample its g×g tile into a private buffer. Tiles are stitched into
    // the field afterwards, so the result is bitwise independent of how the
    // pool schedules blocks.
    let g = samples_per_block;
    let pool = WorkPool::current();
    let num_blocks = layout.nx() * layout.ny();
    let tiles: Vec<TileSlot> = (0..num_blocks).map(|_| Mutex::new(None)).collect();
    pool.scope_chunks(pool.cap(), num_blocks, |block| {
        let bi = block % layout.nx();
        let bj = block / layout.nx();
        let rom = match layout.kind(bi, bj) {
            BlockKind::Tsv => rom_tsv,
            BlockKind::Dummy => rom_dummy.expect("checked above"),
        };
        let sample_tile = || -> Result<Vec<f64>, RomError> {
            let dofs = solution.element_dofs(bi, bj);
            let u = rom.reconstruct_displacement_at_nodes(&dofs, delta_t, &slab_nodes);
            let mesh = rom.mesh();
            let mats = rom.materials();
            let mut tile = vec![f64::NAN; g * g];
            for jj in 0..g {
                for ii in 0..g {
                    let gi = bi * g + ii;
                    let gj = bj * g + jj;
                    let pt = grid.point(gi, gj);
                    let local = [pt[0] - bi as f64 * p, pt[1] - bj as f64 * p, pt[2]];
                    let sample = stress_at(mesh, mats, &u, delta_t, local)?;
                    tile[jj * g + ii] = sample.map_or(f64::NAN, |s| s.von_mises);
                }
            }
            Ok(tile)
        };
        *tiles[block].lock().expect("tile slot poisoned") = Some(sample_tile());
    });
    for (block, slot) in tiles.into_iter().enumerate() {
        let bi = block % layout.nx();
        let bj = block / layout.nx();
        let tile = slot
            .into_inner()
            .expect("tile slot poisoned")
            .expect("every block sampled")?;
        for jj in 0..g {
            let gj = bj * g + jj;
            let row = &tile[jj * g..(jj + 1) * g];
            values[gj * grid.samples[0] + bi * g..gj * grid.samples[0] + bi * g + g]
                .copy_from_slice(row);
        }
    }
    Ok(ScalarField2d { grid, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GlobalBc, GlobalStage, InterpolationGrid, LocalStage, LocalStageOptions};
    use morestress_fem::MaterialSet;
    use morestress_mesh::{BlockResolution, TsvGeometry};

    #[test]
    fn sampled_field_covers_all_blocks_and_is_positive_near_vias() {
        let geom = TsvGeometry::paper_defaults(15.0);
        let rom = LocalStage::new(
            &geom,
            &BlockResolution::coarse(),
            InterpolationGrid::new([3, 3, 3]),
            &MaterialSet::tsv_defaults(),
            BlockKind::Tsv,
        )
        .build(&LocalStageOptions { threads: 4 })
        .unwrap();
        let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
        let sol = GlobalStage::new(&rom)
            .solve(&layout, -250.0, &GlobalBc::ClampedTopBottom)
            .unwrap();
        let field = sample_array_von_mises(&rom, None, &layout, &sol, -250.0, 8).unwrap();
        assert_eq!(field.values.len(), 16 * 16);
        assert!(field.values.iter().all(|v| v.is_finite()));
        assert!(field.max() > 50.0, "peak stress {}", field.max());
        // Four-fold symmetry of the 2×2 array: value at (i,j) ≈ value at
        // mirrored (15-i, j).
        let n = 16;
        let v = |i: usize, j: usize| field.values[j * n + i];
        for j in 0..n {
            for i in 0..n {
                let a = v(i, j);
                let b = v(n - 1 - i, j);
                assert!(
                    (a - b).abs() < 2e-2 * field.max(),
                    "mirror asymmetry at ({i},{j}): {a} vs {b}"
                );
            }
        }
    }
}
