//! A one-stop facade over the local and global stages.

use std::path::PathBuf;

use morestress_fem::{MaterialSet, ScalarField2d};
use morestress_linalg::{
    DirectCholesky, FactorCache, FillOrdering, KernelChoice, Sharded, SolverBackend, VerifyPolicy,
};
use morestress_mesh::{BlockKind, BlockLayout, BlockResolution, TsvGeometry};

use crate::model::build_or_load_cached;
use crate::{
    sample_array_von_mises, GlobalBc, GlobalSolution, GlobalStage, InterpolationGrid,
    LocalStageOptions, ReducedOrderModel, RomError, RomSolver,
};

/// Options for [`MoreStressSimulator::build`].
#[derive(Debug, Clone, Default)]
pub struct SimulatorOptions {
    /// Local-stage threading (paper: 16 threads).
    pub local: LocalStageOptions,
    /// Global solver (paper: GMRES).
    pub solver: RomSolver,
    /// Worker-slot cap for batched global solves; `None` uses the current
    /// [`WorkPool`](morestress_linalg::WorkPool) cap. Like every `threads`
    /// knob, this narrows the shared pool for these solves — it never
    /// spawns threads of its own.
    pub threads: Option<usize>,
    /// When set, global solves run the sharded Schur-complement path
    /// ([`RomSolver::Sharded`]) with this interior shard count, overriding
    /// `solver`. The global stage passes the block-grid geometry of each
    /// free DoF down as a partition hint, so by default the shard plan is
    /// cut along block boundaries (geometry-aware balanced partitioning)
    /// rather than searched on the reduced sparsity graph. `Some(1)` pins
    /// the monolithic direct path through the same code route — useful for
    /// A/B runs; `None` (the default) keeps `solver` as configured.
    pub shards: Option<usize>,
    /// Also build the dummy-block ROM (needed for sub-modeling layouts).
    pub build_dummy: bool,
    /// If set, ROMs are cached here (`<stem>-tsv.rom`, `<stem>-dummy.rom`)
    /// and reloaded when geometry/resolution/grid match.
    pub cache_stem: Option<PathBuf>,
}

/// End-to-end MORE-Stress simulator: builds the one-shot ROMs and answers
/// array problems of arbitrary size, thermal load and location.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct MoreStressSimulator {
    rom_tsv: ReducedOrderModel,
    rom_dummy: Option<ReducedOrderModel>,
    threads: Option<usize>,
    /// The one global-solve backend, built at construction from the
    /// resolved solver selection and hoisted into every stage — so
    /// backend-internal state (the `Sharded` shard cache and its retained
    /// previous preparation) persists across simulator calls instead of
    /// being discarded per solve.
    backend: Box<dyn SolverBackend>,
    /// A clone of the hoisted backend when the resolved solver is sharded
    /// (clones share the shard cache and previous-preparation state),
    /// kept for counter inspection.
    sharded: Option<Sharded>,
    /// Memo of prepared global-stage factorizations: solving the same
    /// lattice again (any thermal load) reuses the factor instead of
    /// re-preparing it.
    factor_cache: FactorCache,
}

/// Optional tuning of the direct-Cholesky family of backends, collected by
/// [`SimulatorBuilder`]. Every field left `None` keeps the backend's own
/// default, so an empty tuning resolves to the exact same backend (same
/// bits, same cache fingerprints) as the untuned constructors.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct BackendTuning {
    verify: Option<VerifyPolicy>,
    ordering: Option<FillOrdering>,
    kernel: Option<KernelChoice>,
}

impl BackendTuning {
    fn apply(&self, mut config: DirectCholesky) -> DirectCholesky {
        if let Some(ordering) = self.ordering {
            config.ordering = ordering;
        }
        if let Some(kernel) = self.kernel {
            config.supernodal.kernel = kernel;
        }
        if let Some(verify) = self.verify {
            config.verify = verify;
        }
        config
    }
}

/// Resolves the configured solver (with the optional shard-count
/// override) into the one hoisted backend, keeping a second handle to the
/// sharded backend for diagnostics. The tuning overrides apply to the
/// direct-Cholesky family ([`RomSolver::DirectCholesky`] and
/// [`RomSolver::Sharded`]); the iterative selections keep their own
/// configuration.
fn resolve_backend(
    solver: RomSolver,
    shards: Option<usize>,
    tuning: &BackendTuning,
) -> (Box<dyn SolverBackend>, Option<Sharded>) {
    let resolved = match shards {
        Some(shards) => RomSolver::Sharded { shards },
        None => solver,
    };
    match resolved {
        RomSolver::Sharded { shards } => {
            let mut backend =
                Sharded::with_inner(shards.max(1), tuning.apply(DirectCholesky::default()));
            if let Some(verify) = tuning.verify {
                backend.verify = verify;
            }
            (Box::new(backend.clone()), Some(backend))
        }
        RomSolver::DirectCholesky => (Box::new(tuning.apply(DirectCholesky::default())), None),
        other => (other.backend(), None),
    }
}

/// One coherent front door over the simulator stack's knob sprawl.
///
/// Before this builder, configuring a simulator meant assembling a
/// [`SimulatorOptions`] (itself holding a [`LocalStageOptions`]), choosing
/// a [`RomSolver`] variant, and — for verification, ordering or kernel
/// tuning — constructing `morestress-linalg` backend structs by hand. The
/// builder collapses all of it into one chain:
///
/// ```
/// use morestress_core::MoreStressSimulator;
/// use morestress_fem::MaterialSet;
/// use morestress_mesh::{BlockResolution, TsvGeometry};
///
/// # fn main() -> Result<(), morestress_core::RomError> {
/// let sim = MoreStressSimulator::builder(&TsvGeometry::paper_defaults(15.0))
///     .resolution(BlockResolution::coarse())
///     .interpolation([2, 2, 2])
///     .materials(MaterialSet::tsv_defaults())
///     .shards(4)
///     .build()?;
/// # let _ = sim;
/// # Ok(())
/// # }
/// ```
///
/// Defaults (geometry aside, which is always explicit):
/// [`BlockResolution::coarse`], `[3, 3, 3]` interpolation,
/// [`MaterialSet::tsv_defaults`], the default [`RomSolver`] (GMRES, the
/// paper's choice), no shard/thread overrides, no dummy-block model, no
/// on-disk ROM cache. An untuned builder produces a simulator **bitwise
/// identical** to the deprecated [`MoreStressSimulator::build`] path with
/// default options (pinned by the `builder_equivalence` test suite).
///
/// The [`verify`](Self::verify), [`ordering`](Self::ordering) and
/// [`kernel`](Self::kernel) overrides tune the direct-Cholesky backend
/// family (plain [`RomSolver::DirectCholesky`] and the sharded route,
/// including each shard's inner factorization); the iterative selections
/// (`Gmres`, `Cg`, `Auto`) keep their own configuration and ignore them.
#[derive(Debug, Clone)]
pub struct SimulatorBuilder {
    geom: TsvGeometry,
    res: BlockResolution,
    interp: InterpolationGrid,
    materials: MaterialSet,
    opts: SimulatorOptions,
    tuning: BackendTuning,
    models: Option<(ReducedOrderModel, Option<ReducedOrderModel>)>,
}

impl SimulatorBuilder {
    /// Starts a builder for the given TSV geometry with the defaults
    /// listed in the [type docs](SimulatorBuilder).
    pub fn new(geom: &TsvGeometry) -> Self {
        Self {
            geom: *geom,
            res: BlockResolution::coarse(),
            interp: InterpolationGrid::new([3, 3, 3]),
            materials: MaterialSet::tsv_defaults(),
            opts: SimulatorOptions::default(),
            tuning: BackendTuning::default(),
            models: None,
        }
    }

    /// Starts a builder around pre-built ROMs (e.g. loaded from disk):
    /// [`build`](Self::build) skips the local stage and wraps the given
    /// models. Geometry, resolution, interpolation and material setters
    /// are irrelevant on this route (the models carry their own).
    pub fn from_models(rom_tsv: ReducedOrderModel, rom_dummy: Option<ReducedOrderModel>) -> Self {
        let mut builder = Self::new(rom_tsv.geometry());
        builder.models = Some((rom_tsv, rom_dummy));
        builder
    }

    /// Unit-block mesh resolution (default: [`BlockResolution::coarse`]).
    pub fn resolution(mut self, res: BlockResolution) -> Self {
        self.res = res;
        self
    }

    /// Interpolation nodes per axis (default: `[3, 3, 3]`).
    pub fn interpolation(mut self, counts: [usize; 3]) -> Self {
        self.interp = InterpolationGrid::new(counts);
        self
    }

    /// Interpolation grid, when one is already at hand.
    pub fn interpolation_grid(mut self, interp: InterpolationGrid) -> Self {
        self.interp = interp;
        self
    }

    /// Material registry (default: [`MaterialSet::tsv_defaults`]).
    pub fn materials(mut self, materials: MaterialSet) -> Self {
        self.materials = materials;
        self
    }

    /// Global-stage solver selection (default: the paper's GMRES).
    pub fn solver(mut self, solver: RomSolver) -> Self {
        self.opts.solver = solver;
        self
    }

    /// Runs the global stage sharded with this interior shard count
    /// (overrides [`solver`](Self::solver); see
    /// [`SimulatorOptions::shards`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.opts.shards = Some(shards);
        self
    }

    /// Worker-slot cap for batched global solves — a cap override on the
    /// shared [`WorkPool`](morestress_linalg::WorkPool), never a spawn
    /// count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = Some(threads);
        self
    }

    /// Worker-slot cap for the one-shot local stage's n+1 solves
    /// (default: the current pool cap).
    pub fn local_threads(mut self, threads: usize) -> Self {
        self.opts.local = LocalStageOptions { threads };
        self
    }

    /// Residual-verification policy for every global solve (direct-family
    /// backends; see the [type docs](SimulatorBuilder)). Verification
    /// never mutates solutions, so `Report` is bitwise-free telemetry.
    pub fn verify(mut self, policy: VerifyPolicy) -> Self {
        self.tuning.verify = Some(policy);
        self
    }

    /// Fill-reducing ordering override for the direct factorization
    /// (default: [`FillOrdering::Auto`]).
    pub fn ordering(mut self, ordering: FillOrdering) -> Self {
        self.tuning.ordering = Some(ordering);
        self
    }

    /// Dense-microkernel override for the direct factorization (default:
    /// [`KernelChoice::Blocked`]). The resolved kernel is part of the
    /// factor-cache fingerprint, so mixing kernels never aliases cached
    /// factors.
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.tuning.kernel = Some(kernel);
        self
    }

    /// Also build the dummy-block ROM (needed for layouts with dummy
    /// blocks — sub-modeling pads, keep-out zones).
    pub fn build_dummy(mut self, build_dummy: bool) -> Self {
        self.opts.build_dummy = build_dummy;
        self
    }

    /// Caches built ROMs at `<stem>-tsv.rom` / `<stem>-dummy.rom` and
    /// reloads them when geometry/resolution/grid match.
    pub fn cache_stem(mut self, stem: impl Into<PathBuf>) -> Self {
        self.opts.cache_stem = Some(stem.into());
        self
    }

    /// Bulk-imports a legacy [`SimulatorOptions`] — the migration bridge
    /// the deprecated constructors delegate through.
    pub fn options(mut self, opts: &SimulatorOptions) -> Self {
        self.opts = opts.clone();
        self
    }

    /// Runs the one-shot local stage(s) — or wraps the pre-built models of
    /// [`from_models`](Self::from_models) — and assembles the simulator
    /// with its hoisted solver backend and factor cache.
    ///
    /// # Errors
    ///
    /// Propagates local-stage failures; [`RomError::Mismatch`] if
    /// pre-built TSV and dummy models are incompatible.
    pub fn build(self) -> Result<MoreStressSimulator, RomError> {
        let (rom_tsv, rom_dummy) = match self.models {
            Some((rom_tsv, rom_dummy)) => {
                if let Some(dummy) = &rom_dummy {
                    rom_tsv.check_compatible(dummy)?;
                }
                (rom_tsv, rom_dummy)
            }
            None => {
                let cache = |suffix: &str| {
                    self.opts.cache_stem.as_ref().map(|stem| {
                        let mut path = stem.clone();
                        let name = path
                            .file_name()
                            .map(|s| s.to_string_lossy().into_owned())
                            .unwrap_or_else(|| "rom".to_string());
                        path.set_file_name(format!("{name}-{suffix}.rom"));
                        path
                    })
                };
                let rom_tsv = build_or_load_cached(
                    &self.geom,
                    &self.res,
                    self.interp,
                    &self.materials,
                    BlockKind::Tsv,
                    &self.opts.local,
                    cache("tsv").as_deref(),
                )?;
                let rom_dummy = if self.opts.build_dummy {
                    Some(build_or_load_cached(
                        &self.geom,
                        &self.res,
                        self.interp,
                        &self.materials,
                        BlockKind::Dummy,
                        &self.opts.local,
                        cache("dummy").as_deref(),
                    )?)
                } else {
                    None
                };
                (rom_tsv, rom_dummy)
            }
        };
        let (backend, sharded) = resolve_backend(self.opts.solver, self.opts.shards, &self.tuning);
        Ok(MoreStressSimulator {
            rom_tsv,
            rom_dummy,
            threads: self.opts.threads,
            backend,
            sharded,
            factor_cache: FactorCache::new(),
        })
    }
}

impl MoreStressSimulator {
    /// Starts a [`SimulatorBuilder`] — the one front door over geometry,
    /// resolution, interpolation, materials, solver, shards, threads,
    /// verification and ordering/kernel tuning.
    pub fn builder(geom: &TsvGeometry) -> SimulatorBuilder {
        SimulatorBuilder::new(geom)
    }

    /// Runs the one-shot local stage(s) for the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates local-stage failures.
    #[deprecated(
        since = "0.1.0",
        note = "use MoreStressSimulator::builder(..) — the one coherent front door over the \
                solver/shards/threads/verify knobs"
    )]
    pub fn build(
        geom: &TsvGeometry,
        res: &BlockResolution,
        interp: InterpolationGrid,
        materials: &MaterialSet,
        opts: &SimulatorOptions,
    ) -> Result<Self, RomError> {
        SimulatorBuilder::new(geom)
            .resolution(*res)
            .interpolation_grid(interp)
            .materials(materials.clone())
            .options(opts)
            .build()
    }

    /// Wraps pre-built ROMs (e.g. loaded from disk).
    ///
    /// # Errors
    ///
    /// [`RomError::Mismatch`] if the two ROMs are incompatible.
    #[deprecated(
        since = "0.1.0",
        note = "use SimulatorBuilder::from_models(..), which accepts the same models plus every \
                builder knob"
    )]
    pub fn from_models(
        rom_tsv: ReducedOrderModel,
        rom_dummy: Option<ReducedOrderModel>,
        solver: RomSolver,
    ) -> Result<Self, RomError> {
        SimulatorBuilder::from_models(rom_tsv, rom_dummy)
            .solver(solver)
            .build()
    }

    /// The TSV-block reduced-order model.
    pub fn tsv_model(&self) -> &ReducedOrderModel {
        &self.rom_tsv
    }

    /// The dummy-block model, if built.
    pub fn dummy_model(&self) -> Option<&ReducedOrderModel> {
        self.rom_dummy.as_ref()
    }

    /// The factorization cache shared by every solve through this
    /// simulator (hit/miss counters included, for tests and diagnostics).
    pub fn factor_cache(&self) -> &FactorCache {
        &self.factor_cache
    }

    /// The hoisted sharded backend, when the resolved solver is
    /// [`RomSolver::Sharded`] — a clone sharing the internal shard cache
    /// (hit/miss counters) and the retained previous preparation, for
    /// tests and diagnostics.
    pub fn sharded_backend(&self) -> Option<&Sharded> {
        self.sharded.as_ref()
    }

    fn stage(&self) -> Result<GlobalStage<'_>, RomError> {
        let mut stage = GlobalStage::new(&self.rom_tsv)
            .with_backend(&*self.backend)
            .with_cache(&self.factor_cache);
        if let Some(threads) = self.threads {
            stage = stage.with_threads(threads);
        }
        if let Some(dummy) = &self.rom_dummy {
            stage = stage.with_dummy(dummy)?;
        }
        Ok(stage)
    }

    /// Solves the global problem for an array layout.
    ///
    /// Repeated calls over the same layout/interpolation reuse one
    /// prepared factorization through the internal [`FactorCache`].
    ///
    /// # Errors
    ///
    /// See [`GlobalStage::solve`].
    pub fn solve_array(
        &self,
        layout: &BlockLayout,
        delta_t: f64,
        bc: &GlobalBc,
    ) -> Result<GlobalSolution, RomError> {
        self.stage()?.solve(layout, delta_t, bc)
    }

    /// Solves the global problem for many thermal loads on one layout:
    /// one assembly + one (cached) factorization + a task-parallel batched
    /// solve. Returns one solution per entry of `delta_ts`, in order.
    ///
    /// # Errors
    ///
    /// See [`GlobalStage::solve_many`].
    pub fn solve_array_many(
        &self,
        layout: &BlockLayout,
        delta_ts: &[f64],
        bc: &GlobalBc,
    ) -> Result<Vec<GlobalSolution>, RomError> {
        self.stage()?.solve_many(layout, delta_ts, bc)
    }

    /// Re-solves after a value-only perturbation of a previously solved
    /// layout — the entry point for placement/optimization loops that
    /// mutate a few blocks per move (pitch sweeps, keep-out zones,
    /// TSV ↔ dummy swaps).
    ///
    /// Routes through the same stage as [`solve_array`](Self::solve_array);
    /// the savings come from the hoisted sharded backend. When the
    /// perturbed layout assembles to an operator with the same sparsity
    /// pattern as the previous solve — any layout of the same shape does,
    /// since the pattern depends only on the lattice while swapping a
    /// block between [`BlockKind::Tsv`] and [`BlockKind::Dummy`] changes
    /// values only — the backend re-factors just the shards whose blocks
    /// changed, reuses every clean shard's factor and stored clique, and
    /// rebuilds only the small interface system. The result is **bitwise
    /// identical** to a from-scratch solve of the perturbed layout;
    /// [`GlobalStats::shards_refactored`](crate::GlobalStats) /
    /// [`shards_reused`](crate::GlobalStats::shards_reused) report the
    /// split. With a monolithic solver the call is simply a fresh solve.
    ///
    /// # Errors
    ///
    /// See [`GlobalStage::solve`].
    pub fn resolve_perturbed(
        &self,
        layout: &BlockLayout,
        delta_t: f64,
        bc: &GlobalBc,
    ) -> Result<GlobalSolution, RomError> {
        let mut solutions = self.resolve_perturbed_many(layout, &[delta_t], bc)?;
        Ok(solutions.pop().expect("one load in, one solution out"))
    }

    /// [`resolve_perturbed`](Self::resolve_perturbed) for many thermal
    /// loads at once: one incremental re-preparation serving the whole
    /// batch, like [`solve_array_many`](Self::solve_array_many).
    ///
    /// # Errors
    ///
    /// See [`GlobalStage::solve_many`].
    pub fn resolve_perturbed_many(
        &self,
        layout: &BlockLayout,
        delta_ts: &[f64],
        bc: &GlobalBc,
    ) -> Result<Vec<GlobalSolution>, RomError> {
        self.stage()?.solve_many(layout, delta_ts, bc)
    }

    /// Samples the mid-plane von Mises field of a solved array
    /// (`samples_per_block²` points per block; the paper uses 100²).
    ///
    /// # Errors
    ///
    /// See [`sample_array_von_mises`].
    pub fn sample_midplane(
        &self,
        layout: &BlockLayout,
        solution: &GlobalSolution,
        delta_t: f64,
        samples_per_block: usize,
    ) -> Result<ScalarField2d, RomError> {
        sample_array_von_mises(
            &self.rom_tsv,
            self.rom_dummy.as_ref(),
            layout,
            solution,
            delta_t,
            samples_per_block,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_build_roundtrip() {
        let dir = std::env::temp_dir().join("morestress-test-cache");
        let _ = std::fs::create_dir_all(&dir);
        let stem = dir.join("unit");
        let geom = TsvGeometry::paper_defaults(15.0);
        let build = || {
            MoreStressSimulator::builder(&geom)
                .interpolation([2, 2, 2])
                .build_dummy(true)
                .cache_stem(stem.clone())
                .build()
                .unwrap()
        };
        let first = build();
        assert!(dir.join("unit-tsv.rom").exists());
        assert!(dir.join("unit-dummy.rom").exists());
        // Second build loads from cache and must agree exactly.
        let second = build();
        let (a, b) = (
            first.tsv_model().element_stiffness(),
            second.tsv_model().element_stiffness(),
        );
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(a[(i, j)], b[(i, j)]);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
