//! A one-stop facade over the local and global stages.

use std::path::PathBuf;

use morestress_fem::{MaterialSet, ScalarField2d};
use morestress_linalg::{FactorCache, Sharded, SolverBackend};
use morestress_mesh::{BlockKind, BlockLayout, BlockResolution, TsvGeometry};

use crate::model::build_or_load_cached;
use crate::{
    sample_array_von_mises, GlobalBc, GlobalSolution, GlobalStage, InterpolationGrid,
    LocalStageOptions, ReducedOrderModel, RomError, RomSolver,
};

/// Options for [`MoreStressSimulator::build`].
#[derive(Debug, Clone, Default)]
pub struct SimulatorOptions {
    /// Local-stage threading (paper: 16 threads).
    pub local: LocalStageOptions,
    /// Global solver (paper: GMRES).
    pub solver: RomSolver,
    /// Worker-slot cap for batched global solves; `None` uses the current
    /// [`WorkPool`](morestress_linalg::WorkPool) cap. Like every `threads`
    /// knob, this narrows the shared pool for these solves — it never
    /// spawns threads of its own.
    pub threads: Option<usize>,
    /// When set, global solves run the sharded Schur-complement path
    /// ([`RomSolver::Sharded`]) with this interior shard count, overriding
    /// `solver`. The global stage passes the block-grid geometry of each
    /// free DoF down as a partition hint, so by default the shard plan is
    /// cut along block boundaries (geometry-aware balanced partitioning)
    /// rather than searched on the reduced sparsity graph. `Some(1)` pins
    /// the monolithic direct path through the same code route — useful for
    /// A/B runs; `None` (the default) keeps `solver` as configured.
    pub shards: Option<usize>,
    /// Also build the dummy-block ROM (needed for sub-modeling layouts).
    pub build_dummy: bool,
    /// If set, ROMs are cached here (`<stem>-tsv.rom`, `<stem>-dummy.rom`)
    /// and reloaded when geometry/resolution/grid match.
    pub cache_stem: Option<PathBuf>,
}

/// End-to-end MORE-Stress simulator: builds the one-shot ROMs and answers
/// array problems of arbitrary size, thermal load and location.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct MoreStressSimulator {
    rom_tsv: ReducedOrderModel,
    rom_dummy: Option<ReducedOrderModel>,
    threads: Option<usize>,
    /// The one global-solve backend, built at construction from the
    /// resolved solver selection and hoisted into every stage — so
    /// backend-internal state (the `Sharded` shard cache and its retained
    /// previous preparation) persists across simulator calls instead of
    /// being discarded per solve.
    backend: Box<dyn SolverBackend>,
    /// A clone of the hoisted backend when the resolved solver is sharded
    /// (clones share the shard cache and previous-preparation state),
    /// kept for counter inspection.
    sharded: Option<Sharded>,
    /// Memo of prepared global-stage factorizations: solving the same
    /// lattice again (any thermal load) reuses the factor instead of
    /// re-preparing it.
    factor_cache: FactorCache,
}

/// Resolves the configured solver (with the optional shard-count
/// override) into the one hoisted backend, keeping a second handle to the
/// sharded backend for diagnostics.
fn resolve_backend(
    solver: RomSolver,
    shards: Option<usize>,
) -> (Box<dyn SolverBackend>, Option<Sharded>) {
    let resolved = match shards {
        Some(shards) => RomSolver::Sharded { shards },
        None => solver,
    };
    match resolved {
        RomSolver::Sharded { shards } => {
            let backend = Sharded::new(shards.max(1));
            (Box::new(backend.clone()), Some(backend))
        }
        other => (other.backend(), None),
    }
}

impl MoreStressSimulator {
    /// Runs the one-shot local stage(s) for the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates local-stage failures.
    pub fn build(
        geom: &TsvGeometry,
        res: &BlockResolution,
        interp: InterpolationGrid,
        materials: &MaterialSet,
        opts: &SimulatorOptions,
    ) -> Result<Self, RomError> {
        let cache = |suffix: &str| {
            opts.cache_stem.as_ref().map(|stem| {
                let mut path = stem.clone();
                let name = path
                    .file_name()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "rom".to_string());
                path.set_file_name(format!("{name}-{suffix}.rom"));
                path
            })
        };
        let rom_tsv = build_or_load_cached(
            geom,
            res,
            interp,
            materials,
            BlockKind::Tsv,
            &opts.local,
            cache("tsv").as_deref(),
        )?;
        let rom_dummy = if opts.build_dummy {
            Some(build_or_load_cached(
                geom,
                res,
                interp,
                materials,
                BlockKind::Dummy,
                &opts.local,
                cache("dummy").as_deref(),
            )?)
        } else {
            None
        };
        let (backend, sharded) = resolve_backend(opts.solver, opts.shards);
        Ok(Self {
            rom_tsv,
            rom_dummy,
            threads: opts.threads,
            backend,
            sharded,
            factor_cache: FactorCache::new(),
        })
    }

    /// Wraps pre-built ROMs (e.g. loaded from disk).
    ///
    /// # Errors
    ///
    /// [`RomError::Mismatch`] if the two ROMs are incompatible.
    pub fn from_models(
        rom_tsv: ReducedOrderModel,
        rom_dummy: Option<ReducedOrderModel>,
        solver: RomSolver,
    ) -> Result<Self, RomError> {
        if let Some(dummy) = &rom_dummy {
            rom_tsv.check_compatible(dummy)?;
        }
        let (backend, sharded) = resolve_backend(solver, None);
        Ok(Self {
            rom_tsv,
            rom_dummy,
            threads: None,
            backend,
            sharded,
            factor_cache: FactorCache::new(),
        })
    }

    /// The TSV-block reduced-order model.
    pub fn tsv_model(&self) -> &ReducedOrderModel {
        &self.rom_tsv
    }

    /// The dummy-block model, if built.
    pub fn dummy_model(&self) -> Option<&ReducedOrderModel> {
        self.rom_dummy.as_ref()
    }

    /// The factorization cache shared by every solve through this
    /// simulator (hit/miss counters included, for tests and diagnostics).
    pub fn factor_cache(&self) -> &FactorCache {
        &self.factor_cache
    }

    /// The hoisted sharded backend, when the resolved solver is
    /// [`RomSolver::Sharded`] — a clone sharing the internal shard cache
    /// (hit/miss counters) and the retained previous preparation, for
    /// tests and diagnostics.
    pub fn sharded_backend(&self) -> Option<&Sharded> {
        self.sharded.as_ref()
    }

    fn stage(&self) -> Result<GlobalStage<'_>, RomError> {
        let mut stage = GlobalStage::new(&self.rom_tsv)
            .with_backend(&*self.backend)
            .with_cache(&self.factor_cache);
        if let Some(threads) = self.threads {
            stage = stage.with_threads(threads);
        }
        if let Some(dummy) = &self.rom_dummy {
            stage = stage.with_dummy(dummy)?;
        }
        Ok(stage)
    }

    /// Solves the global problem for an array layout.
    ///
    /// Repeated calls over the same layout/interpolation reuse one
    /// prepared factorization through the internal [`FactorCache`].
    ///
    /// # Errors
    ///
    /// See [`GlobalStage::solve`].
    pub fn solve_array(
        &self,
        layout: &BlockLayout,
        delta_t: f64,
        bc: &GlobalBc,
    ) -> Result<GlobalSolution, RomError> {
        self.stage()?.solve(layout, delta_t, bc)
    }

    /// Solves the global problem for many thermal loads on one layout:
    /// one assembly + one (cached) factorization + a task-parallel batched
    /// solve. Returns one solution per entry of `delta_ts`, in order.
    ///
    /// # Errors
    ///
    /// See [`GlobalStage::solve_many`].
    pub fn solve_array_many(
        &self,
        layout: &BlockLayout,
        delta_ts: &[f64],
        bc: &GlobalBc,
    ) -> Result<Vec<GlobalSolution>, RomError> {
        self.stage()?.solve_many(layout, delta_ts, bc)
    }

    /// Re-solves after a value-only perturbation of a previously solved
    /// layout — the entry point for placement/optimization loops that
    /// mutate a few blocks per move (pitch sweeps, keep-out zones,
    /// TSV ↔ dummy swaps).
    ///
    /// Routes through the same stage as [`solve_array`](Self::solve_array);
    /// the savings come from the hoisted sharded backend. When the
    /// perturbed layout assembles to an operator with the same sparsity
    /// pattern as the previous solve — any layout of the same shape does,
    /// since the pattern depends only on the lattice while swapping a
    /// block between [`BlockKind::Tsv`] and [`BlockKind::Dummy`] changes
    /// values only — the backend re-factors just the shards whose blocks
    /// changed, reuses every clean shard's factor and stored clique, and
    /// rebuilds only the small interface system. The result is **bitwise
    /// identical** to a from-scratch solve of the perturbed layout;
    /// [`GlobalStats::shards_refactored`](crate::GlobalStats) /
    /// [`shards_reused`](crate::GlobalStats::shards_reused) report the
    /// split. With a monolithic solver the call is simply a fresh solve.
    ///
    /// # Errors
    ///
    /// See [`GlobalStage::solve`].
    pub fn resolve_perturbed(
        &self,
        layout: &BlockLayout,
        delta_t: f64,
        bc: &GlobalBc,
    ) -> Result<GlobalSolution, RomError> {
        let mut solutions = self.resolve_perturbed_many(layout, &[delta_t], bc)?;
        Ok(solutions.pop().expect("one load in, one solution out"))
    }

    /// [`resolve_perturbed`](Self::resolve_perturbed) for many thermal
    /// loads at once: one incremental re-preparation serving the whole
    /// batch, like [`solve_array_many`](Self::solve_array_many).
    ///
    /// # Errors
    ///
    /// See [`GlobalStage::solve_many`].
    pub fn resolve_perturbed_many(
        &self,
        layout: &BlockLayout,
        delta_ts: &[f64],
        bc: &GlobalBc,
    ) -> Result<Vec<GlobalSolution>, RomError> {
        self.stage()?.solve_many(layout, delta_ts, bc)
    }

    /// Samples the mid-plane von Mises field of a solved array
    /// (`samples_per_block²` points per block; the paper uses 100²).
    ///
    /// # Errors
    ///
    /// See [`sample_array_von_mises`].
    pub fn sample_midplane(
        &self,
        layout: &BlockLayout,
        solution: &GlobalSolution,
        delta_t: f64,
        samples_per_block: usize,
    ) -> Result<ScalarField2d, RomError> {
        sample_array_von_mises(
            &self.rom_tsv,
            self.rom_dummy.as_ref(),
            layout,
            solution,
            delta_t,
            samples_per_block,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_build_roundtrip() {
        let dir = std::env::temp_dir().join("morestress-test-cache");
        let _ = std::fs::create_dir_all(&dir);
        let stem = dir.join("unit");
        let geom = TsvGeometry::paper_defaults(15.0);
        let opts = SimulatorOptions {
            build_dummy: true,
            cache_stem: Some(stem.clone()),
            ..SimulatorOptions::default()
        };
        let res = BlockResolution::coarse();
        let interp = InterpolationGrid::new([2, 2, 2]);
        let mats = MaterialSet::tsv_defaults();
        let first = MoreStressSimulator::build(&geom, &res, interp, &mats, &opts).unwrap();
        assert!(dir.join("unit-tsv.rom").exists());
        assert!(dir.join("unit-dummy.rom").exists());
        // Second build loads from cache and must agree exactly.
        let second = MoreStressSimulator::build(&geom, &res, interp, &mats, &opts).unwrap();
        let (a, b) = (
            first.tsv_model().element_stiffness(),
            second.tsv_model().element_stiffness(),
        );
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(a[(i, j)], b[(i, j)]);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
