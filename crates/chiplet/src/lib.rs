//! The coarse chiplet model for sub-modeling (scenario 2, §4.4/§5.2 of the
//! paper).
//!
//! The paper embeds a 15×15 TSV array at five locations in a chiplet — a
//! composite package substrate carrying a silicon interposer and a silicon
//! die — and drives the array simulation with displacement boundary
//! conditions extracted from a *coarse* full-package solution (which the
//! authors obtain from ANSYS). This crate builds that coarse model with our
//! own FEM: a three-layer stack meshed coarsely, solved for thermal warpage,
//! with FE interpolation of displacement and stress at arbitrary points —
//! everything the sub-modeling pipeline needs.
//!
//! The CTE mismatch between the organic laminate (≈18 ppm/°C) and silicon
//! (≈2.3 ppm/°C) produces the global warpage and the sharp stress gradients
//! near the die and interposer corners that make locations 3 and 5 hard for
//! the linear-superposition baseline (Table 2 of the paper).

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops over parallel arrays are the FEM idiom

use std::sync::Arc;
use std::time::{Duration, Instant};

use morestress_fem::{
    solve_thermal_stress_many, stress_at, DirichletBcs, FemError, LinearSolver, MaterialSet,
    StressSample,
};
use morestress_mesh::{Grid1d, HexMesh, MAT_ORGANIC, MAT_SI};

/// Geometry of the three-layer chiplet stack (all lengths in µm).
///
/// The substrate spans `[0, substrate_size]²`; the interposer and die are
/// centered on it. Layer thicknesses stack bottom-up: substrate, interposer,
/// die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipletGeometry {
    /// Lateral size of the (square) package substrate.
    pub substrate_size: f64,
    /// Substrate thickness.
    pub substrate_thickness: f64,
    /// Lateral size of the (square, centered) silicon interposer.
    pub interposer_size: f64,
    /// Interposer thickness — equal to the TSV height, so the modeled TSV
    /// array spans it.
    pub interposer_thickness: f64,
    /// Lateral size of the (square, centered) silicon die.
    pub die_size: f64,
    /// Die thickness.
    pub die_thickness: f64,
}

impl ChipletGeometry {
    /// A bench-scale chiplet consistent with the paper's Fig. 5(b) and a
    /// 50 µm TSV height: 2400 µm organic substrate, 1600 µm Si interposer
    /// (50 µm thick), 800 µm Si die.
    pub fn bench_defaults() -> Self {
        Self {
            substrate_size: 2400.0,
            substrate_thickness: 200.0,
            interposer_size: 1600.0,
            interposer_thickness: 50.0,
            die_size: 800.0,
            die_thickness: 150.0,
        }
    }

    /// z-range `[lo, hi]` of the interposer layer.
    pub fn interposer_z(&self) -> [f64; 2] {
        [
            self.substrate_thickness,
            self.substrate_thickness + self.interposer_thickness,
        ]
    }

    /// Validates the stacking constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.substrate_size <= 0.0
            || self.substrate_thickness <= 0.0
            || self.interposer_size <= 0.0
            || self.interposer_thickness <= 0.0
            || self.die_size <= 0.0
            || self.die_thickness <= 0.0
        {
            return Err("all chiplet dimensions must be positive".into());
        }
        if self.interposer_size > self.substrate_size {
            return Err("interposer must fit on the substrate".into());
        }
        if self.die_size > self.interposer_size {
            return Err("die must fit on the interposer".into());
        }
        Ok(())
    }
}

/// Mesh density of the coarse model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipletResolution {
    /// Lateral cells across the substrate.
    pub lateral_cells: usize,
    /// Cells through the substrate thickness.
    pub substrate_layers: usize,
    /// Cells through the interposer thickness.
    pub interposer_layers: usize,
    /// Cells through the die thickness.
    pub die_layers: usize,
}

impl ChipletResolution {
    /// Coarse default: a few thousand elements, solved in well under a
    /// second — the point of sub-modeling is that this solve is cheap.
    pub fn coarse() -> Self {
        Self {
            lateral_cells: 24,
            substrate_layers: 2,
            interposer_layers: 2,
            die_layers: 2,
        }
    }
}

/// The solved coarse chiplet model: mesh + displacement field + evaluators.
#[derive(Debug)]
pub struct ChipletModel {
    geometry: ChipletGeometry,
    materials: MaterialSet,
    mesh: Arc<HexMesh>,
    displacement: Vec<f64>,
    delta_t: f64,
    /// Wall time of the coarse solve.
    pub solve_time: Duration,
}

impl ChipletModel {
    /// Meshes and solves the coarse chiplet under thermal load `delta_t`.
    ///
    /// Rigid-body motion is removed by a statically determinate 3-2-1
    /// constraint set on the substrate bottom, so the package warps freely —
    /// matching the free-warpage setups of the packaging literature.
    ///
    /// # Errors
    ///
    /// Propagates FEM failures.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn solve(
        geometry: &ChipletGeometry,
        resolution: &ChipletResolution,
        materials: &MaterialSet,
        delta_t: f64,
    ) -> Result<Self, FemError> {
        Self::solve_with(geometry, resolution, materials, delta_t, LinearSolver::Auto)
    }

    /// Like [`ChipletModel::solve`], with an explicit solver selection
    /// (routed through the unified `morestress-linalg` backend layer).
    ///
    /// # Errors
    ///
    /// Propagates FEM failures.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn solve_with(
        geometry: &ChipletGeometry,
        resolution: &ChipletResolution,
        materials: &MaterialSet,
        delta_t: f64,
        solver: LinearSolver,
    ) -> Result<Self, FemError> {
        let mut models =
            Self::solve_many_with(geometry, resolution, materials, &[delta_t], solver)?;
        Ok(models.pop().expect("one load in, one model out"))
    }

    /// Solves the coarse chiplet for several thermal loads at once: the
    /// mesh is built and the stiffness factored once, then all loads are
    /// solved through the batched multi-RHS backend path on the shared
    /// `morestress_linalg::WorkPool` (wrap the call in `WorkPool::install`
    /// to bound its parallelism). Returns one model per entry of
    /// `delta_ts`, in order.
    ///
    /// # Errors
    ///
    /// Propagates FEM failures.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn solve_many(
        geometry: &ChipletGeometry,
        resolution: &ChipletResolution,
        materials: &MaterialSet,
        delta_ts: &[f64],
    ) -> Result<Vec<Self>, FemError> {
        Self::solve_many_with(
            geometry,
            resolution,
            materials,
            delta_ts,
            LinearSolver::Auto,
        )
    }

    /// [`ChipletModel::solve_many`] with an explicit solver selection.
    ///
    /// # Errors
    ///
    /// Propagates FEM failures.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn solve_many_with(
        geometry: &ChipletGeometry,
        resolution: &ChipletResolution,
        materials: &MaterialSet,
        delta_ts: &[f64],
        solver: LinearSolver,
    ) -> Result<Vec<Self>, FemError> {
        geometry.validate().expect("invalid chiplet geometry");
        let start = Instant::now();
        let g = *geometry;

        // Lateral grid: uniform, but snapped so that the interposer and die
        // edges are grid planes (conforming layer footprints).
        let mut planes: Vec<f64> = (0..=resolution.lateral_cells)
            .map(|i| g.substrate_size * i as f64 / resolution.lateral_cells as f64)
            .collect();
        let inter_lo = 0.5 * (g.substrate_size - g.interposer_size);
        let die_lo = 0.5 * (g.substrate_size - g.die_size);
        for edge in [
            inter_lo,
            g.substrate_size - inter_lo,
            die_lo,
            g.substrate_size - die_lo,
        ] {
            // Snap the nearest plane to the edge (keeps counts stable).
            let nearest = planes
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    (a.1 - edge)
                        .abs()
                        .partial_cmp(&(b.1 - edge).abs())
                        .expect("finite")
                })
                .map(|(i, _)| i)
                .expect("non-empty grid");
            if nearest != 0 && nearest != planes.len() - 1 {
                planes[nearest] = edge;
            }
        }
        planes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        planes.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let lateral = Grid1d::from_points(planes);

        // z grid: layer interfaces are exact grid planes.
        let mut z_points = Vec::new();
        let mut push_layer = |z0: f64, z1: f64, n: usize| {
            for i in 0..=n {
                let z = z0 + (z1 - z0) * i as f64 / n as f64;
                if z_points
                    .last()
                    .is_none_or(|&last: &f64| (z - last).abs() > 1e-9)
                {
                    z_points.push(z);
                }
            }
        };
        let z1 = g.substrate_thickness;
        let z2 = z1 + g.interposer_thickness;
        let z3 = z2 + g.die_thickness;
        push_layer(0.0, z1, resolution.substrate_layers);
        push_layer(z1, z2, resolution.interposer_layers);
        push_layer(z2, z3, resolution.die_layers);
        let zgrid = Grid1d::from_points(z_points);

        let center = 0.5 * g.substrate_size;
        let mesh = HexMesh::from_grids(lateral.clone(), lateral, zgrid, move |c| {
            let [x, y, z] = c;
            let half =
                |size: f64| (x - center).abs() < 0.5 * size && (y - center).abs() < 0.5 * size;
            if z < z1 {
                Some(MAT_ORGANIC)
            } else if z < z2 {
                half(g.interposer_size).then_some(MAT_SI)
            } else {
                half(g.die_size).then_some(MAT_SI)
            }
        });

        // 3-2-1 constraints on three substrate-bottom corners.
        let (npx, npy, _) = mesh.lattice_dims();
        let corner = |i: usize, j: usize| {
            mesh.lattice_node(i, j, 0)
                .expect("substrate bottom corners exist")
        };
        let mut bcs = DirichletBcs::new();
        let a = corner(0, 0);
        let b = corner(npx - 1, 0);
        let c = corner(0, npy - 1);
        bcs.set_node(a, [0.0; 3]); // pin
        bcs.set_dof(3 * b + 1, 0.0); // u_y = 0
        bcs.set_dof(3 * b + 2, 0.0); // u_z = 0
        bcs.set_dof(3 * c + 2, 0.0); // u_z = 0

        let solutions = solve_thermal_stress_many(&mesh, materials, delta_ts, &bcs, solver)?;
        // Split the batch wall time evenly so per-model costs stay summable.
        let solve_time = start.elapsed() / solutions.len().max(1) as u32;
        let mesh = Arc::new(mesh);
        Ok(solutions
            .into_iter()
            .zip(delta_ts)
            .map(|(sol, &delta_t)| Self {
                geometry: g,
                materials: materials.clone(),
                mesh: Arc::clone(&mesh),
                displacement: sol.displacement,
                delta_t,
                solve_time,
            })
            .collect())
    }

    /// The chiplet geometry.
    pub fn geometry(&self) -> &ChipletGeometry {
        &self.geometry
    }

    /// The thermal load the model was solved under.
    pub fn delta_t(&self) -> f64 {
        self.delta_t
    }

    /// The coarse mesh.
    pub fn mesh(&self) -> &HexMesh {
        &self.mesh
    }

    /// FE-interpolated displacement at a point (clamped to the mesh bounding
    /// box; points in void cells return the nearest live value by falling
    /// back to zero — callers stay inside the solid).
    pub fn displacement_at(&self, point: [f64; 3]) -> [f64; 3] {
        let Some((e, xi)) = self.mesh.locate(point) else {
            return [0.0; 3];
        };
        let corners = self.mesh.elem_corners(e);
        let hex = morestress_fem::Hex8::from_corners(&corners);
        let shape = hex.shape(xi);
        let conn = &self.mesh.elems()[e];
        let mut u = [0.0; 3];
        for (a, &node) in conn.iter().enumerate() {
            for c in 0..3 {
                u[c] += shape[a] * self.displacement[3 * node + c];
            }
        }
        u
    }

    /// Stress at a point of the coarse model (`None` in voids).
    ///
    /// # Errors
    ///
    /// Propagates unknown-material errors.
    pub fn stress_at(&self, point: [f64; 3]) -> Result<Option<StressSample>, FemError> {
        stress_at(
            &self.mesh,
            &self.materials,
            &self.displacement,
            self.delta_t,
            point,
        )
    }

    /// Warpage: the z-displacement difference between the substrate center
    /// and a substrate corner on the bottom face.
    pub fn warpage(&self) -> f64 {
        let s = self.geometry.substrate_size;
        let uc = self.displacement_at([0.5 * s, 0.5 * s, 0.0]);
        let ue = self.displacement_at([1.0, 1.0, 0.0]);
        uc[2] - ue[2]
    }
}

/// A sub-model region: the box a TSV array (plus dummy padding) occupies
/// inside the interposer, with the coarse-displacement boundary closure the
/// ROM's global stage needs.
#[derive(Debug, Clone)]
pub struct Submodel {
    /// Origin of the array box in chiplet coordinates (lower corner).
    pub origin: [f64; 3],
    /// Lateral extent of the array box.
    pub size: f64,
}

impl Submodel {
    /// Places an array box of lateral size `size` at `origin_xy` in the
    /// interposer of `model` (z spans the interposer thickness).
    ///
    /// # Panics
    ///
    /// Panics if the box does not fit inside the interposer footprint.
    pub fn new(model: &ChipletModel, origin_xy: [f64; 2], size: f64) -> Self {
        let g = model.geometry();
        let lo = 0.5 * (g.substrate_size - g.interposer_size);
        let hi = lo + g.interposer_size;
        assert!(
            origin_xy[0] >= lo - 1e-9
                && origin_xy[1] >= lo - 1e-9
                && origin_xy[0] + size <= hi + 1e-9
                && origin_xy[1] + size <= hi + 1e-9,
            "sub-model box [{:?} + {size}] exceeds the interposer footprint [{lo}, {hi}]",
            origin_xy
        );
        Self {
            origin: [origin_xy[0], origin_xy[1], g.interposer_z()[0]],
            size,
        }
    }

    /// The boundary-displacement closure for
    /// `GlobalBc::SubmodelBoundary`: maps a point in the array's local
    /// frame to the coarse displacement at the corresponding chiplet point.
    ///
    /// `GlobalBc::SubmodelBoundary` lives in `morestress-core`; the closure
    /// type matches it without this crate depending on the core crate.
    pub fn boundary_displacement(
        &self,
        model: &Arc<ChipletModel>,
    ) -> Arc<dyn Fn([f64; 3]) -> [f64; 3] + Send + Sync> {
        let origin = self.origin;
        let model = Arc::clone(model);
        Arc::new(move |local| {
            model.displacement_at([
                origin[0] + local[0],
                origin[1] + local[1],
                origin[2] + local[2],
            ])
        })
    }

    /// The background-stress closure for the superposition baseline
    /// (scenario 2): coarse stress at the corresponding chiplet point.
    pub fn background_stress(
        &self,
        model: &Arc<ChipletModel>,
    ) -> Arc<dyn Fn([f64; 3]) -> [f64; 6] + Send + Sync> {
        let origin = self.origin;
        let model = Arc::clone(model);
        Arc::new(move |local| {
            model
                .stress_at([
                    origin[0] + local[0],
                    origin[1] + local[1],
                    origin[2] + local[2],
                ])
                .ok()
                .flatten()
                .map_or([0.0; 6], |s| s.tensor)
        })
    }
}

/// The five array locations of Fig. 5(b): center of the die shadow, under
/// the die edge, under the die corner, between die edge and interposer edge,
/// and the interposer corner. Returns the `(x, y)` origins for an array box
/// of lateral size `array_size`.
pub fn standard_locations(geometry: &ChipletGeometry, array_size: f64) -> [[f64; 2]; 5] {
    let s = geometry.substrate_size;
    let center = 0.5 * s;
    let inter_lo = 0.5 * (s - geometry.interposer_size);
    let inter_hi = inter_lo + geometry.interposer_size;
    let die_hi = center + 0.5 * geometry.die_size;
    let margin = 0.02 * geometry.interposer_size;
    let clamp = |v: f64| v.clamp(inter_lo + margin, inter_hi - margin - array_size);
    let centered = center - 0.5 * array_size;
    [
        // loc1: die-shadow center.
        [centered, centered],
        // loc2: straddling the die edge, centered in y.
        [clamp(die_hi - 0.5 * array_size), centered],
        // loc3: at the die corner.
        [
            clamp(die_hi - 0.5 * array_size),
            clamp(die_hi - 0.5 * array_size),
        ],
        // loc4: between die edge and interposer edge, centered in y.
        [
            clamp(0.5 * (die_hi + inter_hi) - 0.5 * array_size),
            centered,
        ],
        // loc5: interposer corner.
        [
            clamp(inter_hi - margin - array_size),
            clamp(inter_hi - margin - array_size),
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_coarse() -> ChipletModel {
        ChipletModel::solve(
            &ChipletGeometry::bench_defaults(),
            &ChipletResolution::coarse(),
            &MaterialSet::tsv_defaults(),
            -250.0,
        )
        .expect("chiplet solves")
    }

    #[test]
    fn geometry_validation() {
        let mut g = ChipletGeometry::bench_defaults();
        assert!(g.validate().is_ok());
        g.die_size = 5000.0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn chiplet_warps_under_cooling() {
        let model = solve_coarse();
        // Cooling an organic substrate under stiff silicon bows the package;
        // the warpage magnitude must be nonzero and physically plausible
        // (micrometers, not nanometers or millimeters).
        let w = model.warpage().abs();
        assert!(w > 0.05 && w < 100.0, "warpage {w} µm");
    }

    #[test]
    fn displacement_field_is_continuous_across_elements() {
        let model = solve_coarse();
        let g = model.geometry();
        let z = g.interposer_z()[0] + 1.0;
        let p1 = model.displacement_at([1200.0 - 1e-6, 1200.0, z]);
        let p2 = model.displacement_at([1200.0 + 1e-6, 1200.0, z]);
        for c in 0..3 {
            assert!((p1[c] - p2[c]).abs() < 1e-6);
        }
    }

    #[test]
    fn background_stress_is_sharper_near_die_corner() {
        // The premise of scenario 2: the background varies much more near
        // the die corner (loc3) than under the die center (loc1).
        let model = solve_coarse();
        let g = *model.geometry();
        let z_mid = g.interposer_z()[0] + 0.5 * g.interposer_thickness;
        let center = 0.5 * g.substrate_size;
        let die_hi = center + 0.5 * g.die_size;
        let probe = |x: f64, y: f64| {
            model
                .stress_at([x, y, z_mid])
                .unwrap()
                .map(|s| s.von_mises)
                .unwrap_or(0.0)
        };
        let grad_center = (probe(center + 30.0, center) - probe(center - 30.0, center)).abs();
        let grad_corner = (probe(die_hi + 30.0, die_hi) - probe(die_hi - 30.0, die_hi)).abs();
        assert!(
            grad_corner > 2.0 * grad_center,
            "corner gradient {grad_corner} vs center gradient {grad_center}"
        );
    }

    #[test]
    fn standard_locations_fit_in_interposer() {
        let g = ChipletGeometry::bench_defaults();
        let size = 5.0 * 15.0; // 5-block array at p = 15
        let model = solve_coarse();
        for (i, loc) in standard_locations(&g, size).into_iter().enumerate() {
            // Submodel::new panics if the box does not fit.
            let sub = Submodel::new(&model, loc, size);
            assert!(sub.origin[2] == g.interposer_z()[0], "loc{}", i + 1);
        }
    }

    #[test]
    fn boundary_closure_matches_model_displacement() {
        let model = Arc::new(solve_coarse());
        let g = *model.geometry();
        let sub = Submodel::new(&model, [900.0, 900.0], 75.0);
        let f = sub.boundary_displacement(&model);
        let local = [10.0, 20.0, 25.0];
        let direct = model.displacement_at([910.0, 920.0, g.interposer_z()[0] + 25.0]);
        assert_eq!(f(local), direct);
    }
}
