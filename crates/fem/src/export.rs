//! Field export for visualization: CSV for cut-plane fields and legacy VTK
//! (ASCII `StructuredGrid`-free, unstructured) for full 3-D displacement /
//! stress states. A stress simulator is only as useful as its plots; ANSYS
//! users get contour maps for free, so the reproduction ships exporters for
//! ParaView/gnuplot instead.

use std::io::Write;
use std::path::Path;

use morestress_mesh::HexMesh;

use crate::{stress_at, FemError, MaterialSet, ScalarField2d};

/// Writes a cut-plane scalar field as `x,y,value` CSV (one row per sample,
/// `NaN` for void samples), suitable for gnuplot/pandas heat maps.
///
/// # Errors
///
/// Returns I/O errors from the filesystem.
pub fn write_field_csv(field: &ScalarField2d, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "x,y,von_mises")?;
    let [nx, ny] = field.grid.samples;
    for j in 0..ny {
        for i in 0..nx {
            let p = field.grid.point(i, j);
            writeln!(w, "{},{},{}", p[0], p[1], field.values[j * nx + i])?;
        }
    }
    w.flush()
}

/// Writes a mesh + nodal displacement + per-node von Mises stress as a
/// legacy ASCII VTK unstructured grid, loadable in ParaView.
///
/// The von Mises value at each node is evaluated at the node position
/// (element-interior evaluation with the containing element's material).
///
/// # Errors
///
/// I/O errors as [`FemError::Solver`] never occur here; filesystem errors
/// are returned as `std::io::Error`, stress-recovery errors as `FemError`.
///
/// # Panics
///
/// Panics if `displacement.len() != 3 * mesh.num_nodes()`.
pub fn write_vtk(
    mesh: &HexMesh,
    materials: &MaterialSet,
    displacement: &[f64],
    delta_t: f64,
    path: &Path,
) -> Result<(), ExportError> {
    assert_eq!(
        displacement.len(),
        3 * mesh.num_nodes(),
        "displacement vector length"
    );
    let file = std::fs::File::create(path).map_err(ExportError::Io)?;
    let mut w = std::io::BufWriter::new(file);
    let out: &mut dyn Write = &mut w;

    writeln!(out, "# vtk DataFile Version 3.0").map_err(ExportError::Io)?;
    writeln!(out, "MORE-Stress thermal stress field").map_err(ExportError::Io)?;
    writeln!(out, "ASCII").map_err(ExportError::Io)?;
    writeln!(out, "DATASET UNSTRUCTURED_GRID").map_err(ExportError::Io)?;

    writeln!(out, "POINTS {} double", mesh.num_nodes()).map_err(ExportError::Io)?;
    for p in mesh.nodes() {
        writeln!(out, "{} {} {}", p[0], p[1], p[2]).map_err(ExportError::Io)?;
    }

    let ne = mesh.num_elems();
    writeln!(out, "CELLS {} {}", ne, ne * 9).map_err(ExportError::Io)?;
    for conn in mesh.elems() {
        write!(out, "8").map_err(ExportError::Io)?;
        for &n in conn {
            write!(out, " {n}").map_err(ExportError::Io)?;
        }
        writeln!(out).map_err(ExportError::Io)?;
    }
    writeln!(out, "CELL_TYPES {ne}").map_err(ExportError::Io)?;
    for _ in 0..ne {
        writeln!(out, "12").map_err(ExportError::Io)?; // VTK_HEXAHEDRON
    }

    writeln!(out, "POINT_DATA {}", mesh.num_nodes()).map_err(ExportError::Io)?;
    writeln!(out, "VECTORS displacement double").map_err(ExportError::Io)?;
    for n in 0..mesh.num_nodes() {
        writeln!(
            out,
            "{} {} {}",
            displacement[3 * n],
            displacement[3 * n + 1],
            displacement[3 * n + 2]
        )
        .map_err(ExportError::Io)?;
    }
    writeln!(out, "SCALARS von_mises double 1").map_err(ExportError::Io)?;
    writeln!(out, "LOOKUP_TABLE default").map_err(ExportError::Io)?;
    for n in 0..mesh.num_nodes() {
        // Nudge the sample point into the domain interior so boundary nodes
        // land inside their adjacent element.
        let (lo, hi) = mesh.bounding_box();
        let p = mesh.nodes()[n];
        let q = [
            p[0].clamp(lo[0] + 1e-9, hi[0] - 1e-9),
            p[1].clamp(lo[1] + 1e-9, hi[1] - 1e-9),
            p[2].clamp(lo[2] + 1e-9, hi[2] - 1e-9),
        ];
        let vm = stress_at(mesh, materials, displacement, delta_t, q)
            .map_err(ExportError::Fem)?
            .map_or(f64::NAN, |s| s.von_mises);
        writeln!(out, "{vm}").map_err(ExportError::Io)?;
    }
    writeln!(out, "CELL_DATA {ne}").map_err(ExportError::Io)?;
    writeln!(out, "SCALARS material int 1").map_err(ExportError::Io)?;
    writeln!(out, "LOOKUP_TABLE default").map_err(ExportError::Io)?;
    for e in 0..ne {
        writeln!(out, "{}", mesh.material(e).0).map_err(ExportError::Io)?;
    }
    w.flush().map_err(ExportError::Io)?;
    Ok(())
}

/// Errors from the exporters.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExportError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Stress recovery failed (unregistered material).
    Fem(FemError),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "export i/o error: {e}"),
            ExportError::Fem(e) => write!(f, "export stress recovery error: {e}"),
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Io(e) => Some(e),
            ExportError::Fem(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlaneGrid, ScalarField2d};
    use morestress_mesh::{Grid1d, HexMesh, MAT_SI};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("morestress-export-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn csv_roundtrip_parses() {
        let grid = PlaneGrid::new([0.0, 0.0], [2.0, 2.0], 1.0, 2, 2);
        let field = ScalarField2d {
            grid,
            values: vec![1.0, 2.0, 3.0, 4.0],
        };
        let path = tmp("field.csv");
        write_field_csv(&field, &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("x,y,von_mises"));
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].starts_with("0.5,0.5,1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vtk_output_is_structurally_valid() {
        let g = Grid1d::uniform(0.0, 1.0, 2);
        let mesh = HexMesh::from_grids(g.clone(), g.clone(), g, |_| Some(MAT_SI));
        let mats = MaterialSet::tsv_defaults();
        let u = vec![0.0; 3 * mesh.num_nodes()];
        let path = tmp("block.vtk");
        write_vtk(&mesh, &mats, &u, -250.0, &path).expect("write vtk");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        assert!(text.contains(&format!("POINTS {} double", mesh.num_nodes())));
        assert!(text.contains(&format!(
            "CELLS {} {}",
            mesh.num_elems(),
            mesh.num_elems() * 9
        )));
        assert!(text.contains("VECTORS displacement double"));
        assert!(text.contains("SCALARS von_mises double 1"));
        assert!(text.contains("SCALARS material int 1"));
        // Zero displacement under uniform cooling of a homogeneous block:
        // hydrostatic state, so every von Mises value should be ~0.
        let vm_section = text
            .split("LOOKUP_TABLE default\n")
            .nth(1)
            .expect("von Mises block");
        let first: f64 = vm_section
            .lines()
            .next()
            .expect("at least one value")
            .parse()
            .expect("numeric");
        assert!(first.abs() < 1e-6, "von Mises {first}");
        let _ = std::fs::remove_file(&path);
    }
}
