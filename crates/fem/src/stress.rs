//! Stress recovery and mid-plane von Mises sampling.
//!
//! The paper scores every method on "the gridded von Mises stress on the cut
//! plane crossing the half height of the TSV arrays", with the mean absolute
//! error normalized by the maximum von Mises stress (§5.2). This module
//! provides those exact primitives.

use morestress_mesh::HexMesh;

use crate::element::Hex8;
use crate::{FemError, MaterialSet};

/// The stress state at one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressSample {
    /// Stress tensor in Voigt order `[σxx, σyy, σzz, τxy, τyz, τzx]` (MPa).
    pub tensor: [f64; 6],
    /// Von Mises equivalent stress (MPa).
    pub von_mises: f64,
}

impl StressSample {
    /// Principal stresses `(σ1 ≥ σ2 ≥ σ3)`, computed as the eigenvalues of
    /// the 3×3 stress tensor via the trigonometric (Cardano) solution for
    /// symmetric matrices. Crack-initiation analyses use the maximum
    /// principal stress where the paper's comparisons use von Mises.
    pub fn principal(&self) -> [f64; 3] {
        let [sxx, syy, szz, txy, tyz, tzx] = self.tensor;
        let i1 = sxx + syy + szz;
        let q = i1 / 3.0;
        let p2 = (sxx - q).powi(2)
            + (syy - q).powi(2)
            + (szz - q).powi(2)
            + 2.0 * (txy * txy + tyz * tyz + tzx * tzx);
        let p = (p2 / 6.0).sqrt();
        if p < 1e-300 {
            return [q, q, q]; // hydrostatic state
        }
        // r = det((A - q I) / p) / 2, clamped into [-1, 1].
        let b = [
            (sxx - q) / p,
            txy / p,
            tzx / p,
            txy / p,
            (syy - q) / p,
            tyz / p,
            tzx / p,
            tyz / p,
            (szz - q) / p,
        ];
        let det = b[0] * (b[4] * b[8] - b[5] * b[7]) - b[1] * (b[3] * b[8] - b[5] * b[6])
            + b[2] * (b[3] * b[7] - b[4] * b[6]);
        let r = (det / 2.0).clamp(-1.0, 1.0);
        // φ ∈ [0, π/3], which already orders s1 ≥ s2 ≥ s3.
        let phi = r.acos() / 3.0;
        let s1 = q + 2.0 * p * phi.cos();
        let s3 = q + 2.0 * p * (phi + 2.0 * std::f64::consts::PI / 3.0).cos();
        let s2 = i1 - s1 - s3;
        [s1, s2, s3]
    }

    /// Builds a sample from a Voigt tensor, computing the von Mises stress.
    pub fn from_tensor(tensor: [f64; 6]) -> Self {
        let [sxx, syy, szz, txy, tyz, tzx] = tensor;
        let vm = (0.5 * ((sxx - syy).powi(2) + (syy - szz).powi(2) + (szz - sxx).powi(2))
            + 3.0 * (txy * txy + tyz * tyz + tzx * tzx))
            .sqrt();
        Self {
            tensor,
            von_mises: vm,
        }
    }
}

/// Evaluates the thermoelastic stress at a point:
/// `σ = D (B u_e − α ΔT [1,1,1,0,0,0])`.
///
/// Returns `None` if the point falls in a void cell.
///
/// # Errors
///
/// [`FemError::UnknownMaterial`] if the containing element's material is not
/// registered.
///
/// # Panics
///
/// Panics if `u.len() != 3 * mesh.num_nodes()`.
pub fn stress_at(
    mesh: &HexMesh,
    materials: &MaterialSet,
    u: &[f64],
    delta_t: f64,
    point: [f64; 3],
) -> Result<Option<StressSample>, FemError> {
    assert_eq!(u.len(), 3 * mesh.num_nodes(), "displacement vector length");
    let Some((e, xi)) = mesh.locate(point) else {
        return Ok(None);
    };
    let material = materials.get(mesh.material(e))?;
    let corners = mesh.elem_corners(e);
    let hex = Hex8::from_corners(&corners);
    let b = hex.b_matrix(xi);
    let conn = &mesh.elems()[e];
    // Elastic strain = B u_e − thermal strain.
    let mut strain = [0.0; 6];
    for (a, &node) in conn.iter().enumerate() {
        for c in 0..3 {
            let ua = u[3 * node + c];
            if ua != 0.0 {
                for i in 0..6 {
                    strain[i] += b[i][3 * a + c] * ua;
                }
            }
        }
    }
    let eps_th = material.thermal_strain_unit();
    for i in 0..6 {
        strain[i] -= delta_t * eps_th[i];
    }
    let d = material.d_matrix();
    let mut sigma = [0.0; 6];
    for i in 0..6 {
        for j in 0..6 {
            sigma[i] += d[i][j] * strain[j];
        }
    }
    Ok(Some(StressSample::from_tensor(sigma)))
}

/// A regular sampling grid on a constant-z cut plane.
///
/// # Example
///
/// ```
/// use morestress_fem::PlaneGrid;
///
/// let grid = PlaneGrid::new([0.0, 0.0], [30.0, 30.0], 25.0, 60, 60);
/// assert_eq!(grid.num_points(), 3600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneGrid {
    /// Lower-left corner `(x, y)` of the sampled rectangle.
    pub origin: [f64; 2],
    /// Upper-right corner `(x, y)`.
    pub corner: [f64; 2],
    /// The z-coordinate of the cut plane.
    pub z: f64,
    /// Sample counts along x and y.
    pub samples: [usize; 2],
}

impl PlaneGrid {
    /// Creates a grid of `nx × ny` cell-centered samples covering the
    /// rectangle `[origin, corner]` at height `z`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is degenerate or a sample count is zero.
    pub fn new(origin: [f64; 2], corner: [f64; 2], z: f64, nx: usize, ny: usize) -> Self {
        assert!(
            corner[0] > origin[0] && corner[1] > origin[1],
            "degenerate rectangle"
        );
        assert!(nx > 0 && ny > 0, "sample counts must be nonzero");
        Self {
            origin,
            corner,
            z,
            samples: [nx, ny],
        }
    }

    /// Total number of sample points.
    pub fn num_points(&self) -> usize {
        self.samples[0] * self.samples[1]
    }

    /// The sample point at grid index `(i, j)` (cell-centered).
    pub fn point(&self, i: usize, j: usize) -> [f64; 3] {
        let dx = (self.corner[0] - self.origin[0]) / self.samples[0] as f64;
        let dy = (self.corner[1] - self.origin[1]) / self.samples[1] as f64;
        [
            self.origin[0] + (i as f64 + 0.5) * dx,
            self.origin[1] + (j as f64 + 0.5) * dy,
            self.z,
        ]
    }
}

/// A scalar field sampled on a [`PlaneGrid`] (row-major over `(j, i)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarField2d {
    /// The grid the samples live on.
    pub grid: PlaneGrid,
    /// Sample values, `values[j * nx + i]`. `NaN` marks void samples.
    pub values: Vec<f64>,
}

impl ScalarField2d {
    /// Maximum (ignoring `NaN` voids).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(0.0, f64::max)
    }

    /// Extracts the `ni × nj` sub-field starting at sample `(i0, j0)`.
    /// Useful to score a method on the array interior only, where boundary
    /// effects do not mask the comparison.
    ///
    /// # Panics
    ///
    /// Panics if the requested window exceeds the field.
    pub fn subregion(&self, i0: usize, j0: usize, ni: usize, nj: usize) -> ScalarField2d {
        let [nx, ny] = self.grid.samples;
        assert!(i0 + ni <= nx && j0 + nj <= ny, "subregion out of bounds");
        let dx = (self.grid.corner[0] - self.grid.origin[0]) / nx as f64;
        let dy = (self.grid.corner[1] - self.grid.origin[1]) / ny as f64;
        let origin = [
            self.grid.origin[0] + i0 as f64 * dx,
            self.grid.origin[1] + j0 as f64 * dy,
        ];
        let corner = [origin[0] + ni as f64 * dx, origin[1] + nj as f64 * dy];
        let grid = PlaneGrid::new(origin, corner, self.grid.z, ni, nj);
        let mut values = Vec::with_capacity(ni * nj);
        for j in j0..j0 + nj {
            for i in i0..i0 + ni {
                values.push(self.values[j * nx + i]);
            }
        }
        ScalarField2d { grid, values }
    }

    /// Mean absolute difference against another field on the same grid,
    /// skipping void samples.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn mean_abs_diff(&self, other: &ScalarField2d) -> f64 {
        assert_eq!(self.grid, other.grid, "fields sampled on different grids");
        let mut sum = 0.0;
        let mut n = 0usize;
        for (a, b) in self.values.iter().zip(&other.values) {
            if a.is_nan() || b.is_nan() {
                continue;
            }
            sum += (a - b).abs();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Samples the von Mises stress of a FEM solution on a cut-plane grid.
///
/// # Errors
///
/// [`FemError::UnknownMaterial`] on unregistered materials.
pub fn sample_von_mises(
    mesh: &HexMesh,
    materials: &MaterialSet,
    u: &[f64],
    delta_t: f64,
    grid: &PlaneGrid,
) -> Result<ScalarField2d, FemError> {
    let [nx, ny] = grid.samples;
    let mut values = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let s = stress_at(mesh, materials, u, delta_t, grid.point(i, j))?;
            values.push(s.map_or(f64::NAN, |s| s.von_mises));
        }
    }
    Ok(ScalarField2d {
        grid: *grid,
        values,
    })
}

/// The paper's error metric: mean absolute error between `candidate` and
/// `reference`, normalized by the maximum of the reference field
/// ("the MAE ... is calculated and normalized by the maximum von Mises
/// stress", §5.2).
///
/// # Panics
///
/// Panics if the fields are sampled on different grids.
pub fn normalized_mae(candidate: &ScalarField2d, reference: &ScalarField2d) -> f64 {
    let mae = candidate.mean_abs_diff(reference);
    let peak = reference.max();
    if peak > 0.0 {
        mae / peak
    } else {
        mae
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaterialSet;
    use morestress_mesh::{Grid1d, HexMesh, MAT_SI};

    fn cube(n: usize) -> HexMesh {
        let g = Grid1d::uniform(0.0, 1.0, n);
        HexMesh::from_grids(g.clone(), g.clone(), g, |_| Some(MAT_SI))
    }

    #[test]
    fn von_mises_of_hydrostatic_state_is_zero() {
        let s = StressSample::from_tensor([-5.0, -5.0, -5.0, 0.0, 0.0, 0.0]);
        assert!(s.von_mises.abs() < 1e-12);
    }

    #[test]
    fn von_mises_of_uniaxial_state_is_magnitude() {
        let s = StressSample::from_tensor([7.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((s.von_mises - 7.0).abs() < 1e-12);
    }

    #[test]
    fn von_mises_of_pure_shear() {
        let s = StressSample::from_tensor([0.0, 0.0, 0.0, 3.0, 0.0, 0.0]);
        assert!((s.von_mises - 3.0 * 3.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn free_expansion_displacement_is_stress_free() {
        // u = alpha*dT*x exactly cancels the thermal strain.
        let mesh = cube(2);
        let mats = MaterialSet::tsv_defaults();
        let alpha = crate::Material::silicon().cte;
        let dt = -100.0;
        let mut u = vec![0.0; 3 * mesh.num_nodes()];
        for (n, p) in mesh.nodes().iter().enumerate() {
            for c in 0..3 {
                u[3 * n + c] = alpha * dt * p[c];
            }
        }
        let s = stress_at(&mesh, &mats, &u, dt, [0.4, 0.6, 0.3])
            .unwrap()
            .unwrap();
        assert!(s.von_mises < 1e-6, "von Mises {}", s.von_mises);
    }

    #[test]
    fn zero_displacement_under_cooling_gives_biaxial_tension_magnitude() {
        // Fully clamped silicon cooled by dT: sigma = -E*alpha*dT/(1-2nu)
        // hydrostatic... for u=0, sigma = -D*eps_th*dT (all normal equal).
        let mesh = cube(1);
        let mats = MaterialSet::tsv_defaults();
        let dt = -250.0;
        let u = vec![0.0; 3 * mesh.num_nodes()];
        let s = stress_at(&mesh, &mats, &u, dt, [0.5, 0.5, 0.5])
            .unwrap()
            .unwrap();
        let si = crate::Material::silicon();
        let expect = -dt * si.thermal_stress_coefficient();
        assert!((s.tensor[0] - expect).abs() < 1e-9 * expect.abs());
        assert!((s.tensor[1] - s.tensor[0]).abs() < 1e-12);
        assert!(s.von_mises < 1e-9, "hydrostatic state");
    }

    #[test]
    fn grid_sampling_and_mae() {
        let mesh = cube(2);
        let mats = MaterialSet::tsv_defaults();
        let u = vec![0.0; 3 * mesh.num_nodes()];
        let grid = PlaneGrid::new([0.0, 0.0], [1.0, 1.0], 0.5, 4, 4);
        let f1 = sample_von_mises(&mesh, &mats, &u, -250.0, &grid).unwrap();
        assert_eq!(f1.values.len(), 16);
        let f2 = ScalarField2d {
            grid,
            values: f1.values.iter().map(|v| v + 1.0).collect(),
        };
        assert!((f1.mean_abs_diff(&f2) - 1.0).abs() < 1e-12);
        let nmae = normalized_mae(&f2, &f1);
        assert!(nmae.is_finite());
    }
}

#[cfg(test)]
mod principal_tests {
    use super::*;

    #[test]
    fn principal_of_diagonal_tensor_is_sorted_diagonal() {
        let s = StressSample::from_tensor([30.0, -10.0, 5.0, 0.0, 0.0, 0.0]);
        let p = s.principal();
        assert!((p[0] - 30.0).abs() < 1e-9);
        assert!((p[1] - 5.0).abs() < 1e-9);
        assert!((p[2] + 10.0).abs() < 1e-9);
    }

    #[test]
    fn principal_of_pure_shear() {
        // Pure shear txy = t: principal stresses are (t, 0, -t).
        let s = StressSample::from_tensor([0.0, 0.0, 0.0, 7.0, 0.0, 0.0]);
        let p = s.principal();
        assert!((p[0] - 7.0).abs() < 1e-9);
        assert!(p[1].abs() < 1e-9);
        assert!((p[2] + 7.0).abs() < 1e-9);
    }

    #[test]
    fn principal_invariants_preserved() {
        let t = [12.0, -3.0, 8.0, 4.0, -2.0, 1.0];
        let s = StressSample::from_tensor(t);
        let p = s.principal();
        assert!(p[0] >= p[1] && p[1] >= p[2], "ordering {p:?}");
        // Trace invariant.
        assert!((p[0] + p[1] + p[2] - (t[0] + t[1] + t[2])).abs() < 1e-9);
        // Von Mises from principal values must match the Voigt formula.
        let vm_p =
            (0.5 * ((p[0] - p[1]).powi(2) + (p[1] - p[2]).powi(2) + (p[2] - p[0]).powi(2))).sqrt();
        assert!((vm_p - s.von_mises).abs() < 1e-9);
    }

    #[test]
    fn hydrostatic_state_returns_triple_eigenvalue() {
        let s = StressSample::from_tensor([-4.0, -4.0, -4.0, 0.0, 0.0, 0.0]);
        assert_eq!(s.principal(), [-4.0, -4.0, -4.0]);
    }
}
