//! Isotropic linear thermoelastic materials.
//!
//! Units: Young's modulus in MPa, lengths in µm, temperatures in °C, CTE in
//! 1/°C — stresses come out in MPa.

use morestress_mesh::{MaterialId, MAT_CU, MAT_LINER, MAT_ORGANIC, MAT_SI};

use crate::FemError;

/// An isotropic linear thermoelastic material.
///
/// # Example
///
/// ```
/// use morestress_fem::Material;
///
/// let si = Material::silicon();
/// let (lambda, mu) = si.lame();
/// assert!(lambda > 0.0 && mu > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Young's modulus `E` (MPa).
    pub youngs: f64,
    /// Poisson's ratio `ν`.
    pub poisson: f64,
    /// Coefficient of thermal expansion `α` (1/°C).
    pub cte: f64,
}

impl Material {
    /// Creates a material and validates the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if `youngs <= 0` or `poisson` is outside `(-1, 0.5)`.
    pub fn new(youngs: f64, poisson: f64, cte: f64) -> Self {
        assert!(youngs > 0.0, "Young's modulus must be positive");
        assert!(
            poisson > -1.0 && poisson < 0.5,
            "Poisson's ratio must lie in (-1, 0.5)"
        );
        Self {
            youngs,
            poisson,
            cte,
        }
    }

    /// Copper (TSV body): E = 110 GPa, ν = 0.35, α = 17e-6/°C.
    pub fn copper() -> Self {
        Self::new(110_000.0, 0.35, 17.0e-6)
    }

    /// Silicon (substrate/interposer/die): E = 130 GPa, ν = 0.28,
    /// α = 2.3e-6/°C.
    pub fn silicon() -> Self {
        Self::new(130_000.0, 0.28, 2.3e-6)
    }

    /// SiO₂ (dielectric liner): E = 71 GPa, ν = 0.16, α = 0.5e-6/°C.
    pub fn silica() -> Self {
        Self::new(71_000.0, 0.16, 0.5e-6)
    }

    /// Organic laminate (package substrate): E = 22 GPa, ν = 0.30,
    /// α = 18e-6/°C.
    pub fn organic() -> Self {
        Self::new(22_000.0, 0.30, 18.0e-6)
    }

    /// Lamé parameters `(λ, μ)` (Eq. 2 of the paper).
    pub fn lame(&self) -> (f64, f64) {
        let e = self.youngs;
        let nu = self.poisson;
        let lambda = e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
        let mu = e / (2.0 * (1.0 + nu));
        (lambda, mu)
    }

    /// The 6×6 isotropic elasticity matrix `D` in Voigt order
    /// `[xx, yy, zz, xy, yz, zx]` with engineering shear strains.
    pub fn d_matrix(&self) -> [[f64; 6]; 6] {
        let (la, mu) = self.lame();
        let mut d = [[0.0; 6]; 6];
        for i in 0..3 {
            for j in 0..3 {
                d[i][j] = la;
            }
            d[i][i] += 2.0 * mu;
            d[i + 3][i + 3] = mu;
        }
        d
    }

    /// Thermal strain (Voigt) for a unit temperature change:
    /// `α · [1, 1, 1, 0, 0, 0]`.
    pub fn thermal_strain_unit(&self) -> [f64; 6] {
        [self.cte, self.cte, self.cte, 0.0, 0.0, 0.0]
    }

    /// Thermal stress coefficient `α(3λ + 2μ)` — the prefactor of the load
    /// term in Eq. 1 of the paper.
    pub fn thermal_stress_coefficient(&self) -> f64 {
        let (la, mu) = self.lame();
        self.cte * (3.0 * la + 2.0 * mu)
    }
}

/// A registry mapping mesh [`MaterialId`]s to [`Material`]s.
///
/// # Example
///
/// ```
/// use morestress_fem::MaterialSet;
/// use morestress_mesh::MAT_CU;
///
/// let mats = MaterialSet::tsv_defaults();
/// assert!(mats.get(MAT_CU).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaterialSet {
    entries: Vec<(MaterialId, Material)>,
}

impl MaterialSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry used by all paper experiments: Cu via, SiO₂ liner,
    /// Si substrate, organic package laminate.
    pub fn tsv_defaults() -> Self {
        let mut set = Self::new();
        set.insert(MAT_CU, Material::copper());
        set.insert(MAT_LINER, Material::silica());
        set.insert(MAT_SI, Material::silicon());
        set.insert(MAT_ORGANIC, Material::organic());
        set
    }

    /// Registers (or replaces) a material.
    pub fn insert(&mut self, id: MaterialId, material: Material) {
        if let Some(slot) = self.entries.iter_mut().find(|(mid, _)| *mid == id) {
            slot.1 = material;
        } else {
            self.entries.push((id, material));
        }
    }

    /// Iterates over the registered `(id, material)` pairs in insertion
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (MaterialId, &Material)> + '_ {
        self.entries.iter().map(|(id, m)| (*id, m))
    }

    /// Looks up a material.
    ///
    /// # Errors
    ///
    /// [`FemError::UnknownMaterial`] if the id is not registered.
    pub fn get(&self, id: MaterialId) -> Result<&Material, FemError> {
        self.entries
            .iter()
            .find(|(mid, _)| *mid == id)
            .map(|(_, m)| m)
            .ok_or(FemError::UnknownMaterial { id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lame_matches_hand_computation() {
        // E = 100, nu = 0.25: lambda = 100*0.25/(1.25*0.5) = 40, mu = 40.
        let m = Material::new(100.0, 0.25, 1e-6);
        let (la, mu) = m.lame();
        assert!((la - 40.0).abs() < 1e-12);
        assert!((mu - 40.0).abs() < 1e-12);
    }

    #[test]
    fn d_matrix_is_symmetric_positive() {
        let d = Material::copper().d_matrix();
        for i in 0..6 {
            assert!(d[i][i] > 0.0);
            for j in 0..6 {
                assert_eq!(d[i][j], d[j][i]);
            }
        }
        // Off-diagonal normal coupling equals lambda.
        let (la, _) = Material::copper().lame();
        assert!((d[0][1] - la).abs() < 1e-9);
    }

    #[test]
    fn thermal_coefficient_consistency() {
        // alpha*(3*lambda + 2*mu) must equal D * (alpha*[1,1,1,0,0,0]) row sum
        // for any normal component.
        let m = Material::silicon();
        let d = m.d_matrix();
        let eps = m.thermal_strain_unit();
        let sigma0: f64 = (0..6).map(|j| d[0][j] * eps[j]).sum();
        assert!((sigma0 - m.thermal_stress_coefficient()).abs() < 1e-9);
    }

    #[test]
    fn registry_lookup_and_unknown() {
        let mats = MaterialSet::tsv_defaults();
        assert!(mats.get(MAT_SI).is_ok());
        assert!(matches!(
            mats.get(MaterialId(99)),
            Err(FemError::UnknownMaterial { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "Poisson")]
    fn incompressible_poisson_rejected() {
        let _ = Material::new(1.0, 0.5, 0.0);
    }
}
