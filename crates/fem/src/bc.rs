//! Dirichlet boundary conditions via symmetric elimination.
//!
//! The paper describes the "lifting" procedure (rows zeroed, unit diagonal,
//! prescribed values moved to the right-hand side, Eqs. 12–13). We implement
//! the symmetric variant: the constrained system is *reduced* to the free
//! DoFs with `rhs_f = ΔT·b_f − A_fb·u_b`, which preserves symmetry and
//! positive definiteness so sparse Cholesky and CG remain applicable. The
//! two formulations produce identical free-DoF solutions.

use std::collections::BTreeMap;
use std::sync::Arc;

use morestress_linalg::CsrMatrix;

use crate::FemError;

/// A set of prescribed displacement values, keyed by global DoF index
/// (`3·node + component`).
///
/// # Example
///
/// ```
/// use morestress_fem::DirichletBcs;
///
/// let mut bcs = DirichletBcs::new();
/// bcs.set_dof(8, 0.25);
/// bcs.clamp_nodes(&[0, 1]); // all three components of nodes 0 and 1 → 0
/// assert_eq!(bcs.len(), 7);
/// assert_eq!(bcs.value(8), Some(0.25));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DirichletBcs {
    values: BTreeMap<usize, f64>,
}

impl DirichletBcs {
    /// An empty set of constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prescribes a single DoF. Later calls overwrite earlier ones.
    pub fn set_dof(&mut self, dof: usize, value: f64) {
        self.values.insert(dof, value);
    }

    /// Prescribes all three components of a node.
    pub fn set_node(&mut self, node: usize, displacement: [f64; 3]) {
        for (c, v) in displacement.into_iter().enumerate() {
            self.set_dof(3 * node + c, v);
        }
    }

    /// Clamps all three components of each node to zero.
    pub fn clamp_nodes(&mut self, nodes: &[usize]) {
        for &n in nodes {
            self.set_node(n, [0.0; 3]);
        }
    }

    /// Number of constrained DoFs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no DoF is constrained.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The prescribed value of `dof`, if constrained.
    pub fn value(&self, dof: usize) -> Option<f64> {
        self.values.get(&dof).copied()
    }

    /// Iterates over `(dof, value)` pairs in DoF order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values.iter().map(|(&d, &v)| (d, v))
    }
}

/// A symmetric reduction of `A u = b` to the free DoFs.
#[derive(Debug, Clone)]
pub struct ReducedSystem {
    /// `A_ff`: the operator restricted to free DoFs, shared so a solver
    /// backend can be prepared on it (and cached across solves) without
    /// copying the matrix.
    pub a_ff: Arc<CsrMatrix>,
    /// Right-hand side on the free DoFs: `b_f − A_fb u_b`.
    pub rhs: Vec<f64>,
    /// Mapping free index → full DoF index.
    pub free_dofs: Vec<usize>,
    /// The constraints this reduction was built from.
    bcs: DirichletBcs,
    ndof: usize,
}

impl ReducedSystem {
    /// Reduces `a·u = b` under the given constraints.
    ///
    /// # Errors
    ///
    /// [`FemError::FullyConstrained`] if no DoF remains free.
    pub fn new(a: &CsrMatrix, b: &[f64], bcs: &DirichletBcs) -> Result<Self, FemError> {
        let ndof = a.nrows();
        assert_eq!(b.len(), ndof, "rhs length must match the operator");
        let mut is_fixed = vec![false; ndof];
        for (dof, _) in bcs.iter() {
            assert!(dof < ndof, "constrained dof {dof} out of range");
            is_fixed[dof] = true;
        }
        let free_dofs: Vec<usize> = (0..ndof).filter(|&d| !is_fixed[d]).collect();
        if free_dofs.is_empty() {
            return Err(FemError::FullyConstrained);
        }
        // col_map keeps free columns in order (monotone), drops fixed ones.
        let mut col_map = vec![None; ndof];
        for (new, &old) in free_dofs.iter().enumerate() {
            col_map[old] = Some(new);
        }
        let a_ff = Arc::new(a.extract(&free_dofs, &col_map, free_dofs.len()));

        // rhs = b_f − A_fb u_b, computed row-wise without materializing A_fb.
        let mut rhs = Vec::with_capacity(free_dofs.len());
        for &row in &free_dofs {
            let (cols, vals) = a.row(row);
            let mut s = b[row];
            for (&c, &v) in cols.iter().zip(vals) {
                if is_fixed[c] {
                    s -= v * bcs.value(c).expect("fixed dof has a value");
                }
            }
            rhs.push(s);
        }

        Ok(Self {
            a_ff,
            rhs,
            free_dofs,
            bcs: bcs.clone(),
            ndof,
        })
    }

    /// Number of free DoFs.
    pub fn num_free(&self) -> usize {
        self.free_dofs.len()
    }

    /// Builds the reduced right-hand sides of the scaled loads
    /// `b_k = factor_k · unit_load`, assuming `self` was reduced with a
    /// **zero** load (so `self.rhs` is exactly the load-independent lifting
    /// term `−A_fb u_b`). This is the batched multi-load path: the reduced
    /// operator and lifting are computed once, each load costs one
    /// restriction + axpy.
    ///
    /// # Panics
    ///
    /// Panics if `unit_load.len()` is not the full DoF count.
    pub fn rhs_for_scaled_loads(&self, unit_load: &[f64], factors: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(unit_load.len(), self.ndof, "unit load length");
        let unit_f: Vec<f64> = self.free_dofs.iter().map(|&d| unit_load[d]).collect();
        factors
            .iter()
            .map(|&factor| {
                self.rhs
                    .iter()
                    .zip(&unit_f)
                    .map(|(lift, unit)| lift + factor * unit)
                    .collect()
            })
            .collect()
    }

    /// Expands a free-DoF solution back to the full DoF vector, filling in
    /// the prescribed values.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_free()`.
    pub fn expand(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.free_dofs.len(), "free solution length");
        let mut full = vec![0.0; self.ndof];
        for (dof, v) in self.bcs.iter() {
            full[dof] = v;
        }
        for (free, &dof) in self.free_dofs.iter().enumerate() {
            full[dof] = x[free];
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morestress_linalg::CooMatrix;

    /// 1-D bar of unit springs: A = tridiag(-1, 2, -1), fixed ends.
    fn spring_chain(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn reduction_solves_prescribed_displacement_problem() {
        // 5-node chain, u0 = 0, u4 = 1, no load: solution is linear ramp.
        let a = spring_chain(5);
        let b = vec![0.0; 5];
        let mut bcs = DirichletBcs::new();
        bcs.set_dof(0, 0.0);
        bcs.set_dof(4, 1.0);
        let red = ReducedSystem::new(&a, &b, &bcs).unwrap();
        assert_eq!(red.num_free(), 3);
        let chol = morestress_linalg::SparseCholesky::factor(&red.a_ff).unwrap();
        let x = chol.solve(&red.rhs);
        let full = red.expand(&x);
        for (i, expect) in [0.0, 0.25, 0.5, 0.75, 1.0].iter().enumerate() {
            assert!((full[i] - expect).abs() < 1e-12, "u[{i}] = {}", full[i]);
        }
    }

    #[test]
    fn reduction_matches_paper_lifting() {
        // The paper's lifting (zero rows + unit diagonal + prescribed rhs)
        // must give the same answer as symmetric reduction.
        let a = spring_chain(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut bcs = DirichletBcs::new();
        bcs.set_dof(1, 0.5);
        let red = ReducedSystem::new(&a, &b, &bcs).unwrap();
        let x = morestress_linalg::SparseCholesky::factor(&red.a_ff)
            .unwrap()
            .solve(&red.rhs);
        let full = red.expand(&x);

        // Lifted (non-symmetric) formulation solved densely.
        let mut rows = Vec::new();
        for i in 0..4 {
            let mut row = vec![0.0; 4];
            if bcs.value(i).is_some() {
                row[i] = 1.0;
            } else {
                for j in 0..4 {
                    row[j] = a.get(i, j);
                }
            }
            rows.push(row);
        }
        let dense = morestress_linalg::DenseMatrix::from_rows(
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let rhs: Vec<f64> = (0..4).map(|i| bcs.value(i).unwrap_or(b[i])).collect();
        let lifted = dense.lu().unwrap().solve(&rhs).unwrap();
        for (p, q) in full.iter().zip(&lifted) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn fully_constrained_is_an_error() {
        let a = spring_chain(2);
        let mut bcs = DirichletBcs::new();
        bcs.set_dof(0, 0.0);
        bcs.set_dof(1, 0.0);
        assert!(matches!(
            ReducedSystem::new(&a, &[0.0, 0.0], &bcs),
            Err(FemError::FullyConstrained)
        ));
    }

    #[test]
    fn node_helpers_expand_components() {
        let mut bcs = DirichletBcs::new();
        bcs.set_node(2, [1.0, 2.0, 3.0]);
        assert_eq!(bcs.value(6), Some(1.0));
        assert_eq!(bcs.value(7), Some(2.0));
        assert_eq!(bcs.value(8), Some(3.0));
        bcs.clamp_nodes(&[0]);
        assert_eq!(bcs.value(0), Some(0.0));
        assert_eq!(bcs.len(), 6);
    }
}
