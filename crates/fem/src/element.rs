//! The trilinear 8-node hexahedral element (Hex8).
//!
//! All elements produced by [`morestress_mesh`] are axis-aligned boxes, so
//! the Jacobian is diagonal and constant per element; the kernels exploit
//! this but keep the standard isoparametric structure.

use crate::Material;

/// Corner signs of the reference element, matching the mesh connectivity
/// order (ζ=-1 face counterclockwise, then ζ=+1 face).
const SIGNS: [[f64; 3]; 8] = [
    [-1.0, -1.0, -1.0],
    [1.0, -1.0, -1.0],
    [1.0, 1.0, -1.0],
    [-1.0, 1.0, -1.0],
    [-1.0, -1.0, 1.0],
    [1.0, -1.0, 1.0],
    [1.0, 1.0, 1.0],
    [-1.0, 1.0, 1.0],
];

/// The 2×2×2 Gauss quadrature abscissa `1/√3` (all weights are 1).
pub const GAUSS_2X2X2: f64 = 0.577_350_269_189_625_8;

/// Geometry of one axis-aligned Hex8 element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hex8 {
    /// Edge lengths `(dx, dy, dz)`.
    pub edges: [f64; 3],
}

impl Hex8 {
    /// Builds the element geometry from its 8 corner coordinates (in local
    /// node order).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the corners do not form an axis-aligned box.
    pub fn from_corners(corners: &[[f64; 3]; 8]) -> Self {
        let dx = corners[1][0] - corners[0][0];
        let dy = corners[3][1] - corners[0][1];
        let dz = corners[4][2] - corners[0][2];
        debug_assert!(dx > 0.0 && dy > 0.0 && dz > 0.0, "degenerate element");
        debug_assert!(
            (corners[6][0] - corners[0][0] - dx).abs() < 1e-9 * dx.max(1.0)
                && (corners[6][1] - corners[0][1] - dy).abs() < 1e-9 * dy.max(1.0)
                && (corners[6][2] - corners[0][2] - dz).abs() < 1e-9 * dz.max(1.0),
            "element is not an axis-aligned box"
        );
        Self {
            edges: [dx, dy, dz],
        }
    }

    /// Shape function values at reference coordinates `(ξ,η,ζ)`.
    pub fn shape(&self, xi: [f64; 3]) -> [f64; 8] {
        std::array::from_fn(|a| {
            0.125
                * (1.0 + SIGNS[a][0] * xi[0])
                * (1.0 + SIGNS[a][1] * xi[1])
                * (1.0 + SIGNS[a][2] * xi[2])
        })
    }

    /// Physical-space shape function gradients `∂N_a/∂(x,y,z)` at reference
    /// coordinates.
    pub fn shape_gradients(&self, xi: [f64; 3]) -> [[f64; 3]; 8] {
        let [dx, dy, dz] = self.edges;
        std::array::from_fn(|a| {
            let [sx, sy, sz] = SIGNS[a];
            let fx = 1.0 + sx * xi[0];
            let fy = 1.0 + sy * xi[1];
            let fz = 1.0 + sz * xi[2];
            [
                0.125 * sx * fy * fz * (2.0 / dx),
                0.125 * fx * sy * fz * (2.0 / dy),
                0.125 * fx * fy * sz * (2.0 / dz),
            ]
        })
    }

    /// Jacobian determinant (constant for a box): `dx·dy·dz / 8`.
    pub fn det_jacobian(&self) -> f64 {
        self.edges[0] * self.edges[1] * self.edges[2] / 8.0
    }

    /// The 6×24 strain–displacement matrix `B` at reference coordinates, in
    /// Voigt order `[xx, yy, zz, xy, yz, zx]` (engineering shear strains).
    pub fn b_matrix(&self, xi: [f64; 3]) -> [[f64; 24]; 6] {
        let grads = self.shape_gradients(xi);
        let mut b = [[0.0; 24]; 6];
        for (a, g) in grads.iter().enumerate() {
            let (cx, cy, cz) = (3 * a, 3 * a + 1, 3 * a + 2);
            b[0][cx] = g[0];
            b[1][cy] = g[1];
            b[2][cz] = g[2];
            b[3][cx] = g[1];
            b[3][cy] = g[0];
            b[4][cy] = g[2];
            b[4][cz] = g[1];
            b[5][cx] = g[2];
            b[5][cz] = g[0];
        }
        b
    }
}

/// Iterator over the 8 Gauss points of the 2×2×2 rule (all weights 1).
fn gauss_points() -> impl Iterator<Item = [f64; 3]> {
    (0..8).map(|g| {
        [
            if g & 1 == 0 {
                -GAUSS_2X2X2
            } else {
                GAUSS_2X2X2
            },
            if g & 2 == 0 {
                -GAUSS_2X2X2
            } else {
                GAUSS_2X2X2
            },
            if g & 4 == 0 {
                -GAUSS_2X2X2
            } else {
                GAUSS_2X2X2
            },
        ]
    })
}

/// Element stiffness matrix `Kₑ = Σ_g Bᵀ D B |J|` (24×24, row-major).
pub fn element_stiffness(hex: &Hex8, material: &Material) -> [f64; 24 * 24] {
    let d = material.d_matrix();
    let detj = hex.det_jacobian();
    let mut ke = [0.0; 24 * 24];
    for xi in gauss_points() {
        let b = hex.b_matrix(xi);
        // db = D * B (6×24)
        let mut db = [[0.0; 24]; 6];
        for i in 0..6 {
            for l in 0..6 {
                let dil = d[i][l];
                if dil == 0.0 {
                    continue;
                }
                for c in 0..24 {
                    db[i][c] += dil * b[l][c];
                }
            }
        }
        // ke += Bᵀ (D B) * detj
        for r in 0..24 {
            for i in 0..6 {
                let bir = b[i][r];
                if bir == 0.0 {
                    continue;
                }
                let w = bir * detj;
                let row = &mut ke[r * 24..(r + 1) * 24];
                for c in 0..24 {
                    row[c] += w * db[i][c];
                }
            }
        }
    }
    ke
}

/// Element thermal load for a **unit** temperature change:
/// `fₑ = Σ_g Bᵀ D ε_th |J|` with `ε_th = α·[1,1,1,0,0,0]`. Scale by ΔT for
/// the actual thermal load.
pub fn element_thermal_load(hex: &Hex8, material: &Material) -> [f64; 24] {
    let d = material.d_matrix();
    let eps = material.thermal_strain_unit();
    // sigma_th = D * eps (constant per material)
    let mut sigma = [0.0; 6];
    for i in 0..6 {
        for j in 0..6 {
            sigma[i] += d[i][j] * eps[j];
        }
    }
    let detj = hex.det_jacobian();
    let mut fe = [0.0; 24];
    for xi in gauss_points() {
        let b = hex.b_matrix(xi);
        for c in 0..24 {
            let mut s = 0.0;
            for i in 0..6 {
                s += b[i][c] * sigma[i];
            }
            fe[c] += s * detj;
        }
    }
    fe
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_hex() -> Hex8 {
        Hex8 {
            edges: [1.0, 1.0, 1.0],
        }
    }

    #[test]
    fn shape_functions_partition_unity() {
        let hex = Hex8 {
            edges: [2.0, 3.0, 0.5],
        };
        for xi in [[0.0, 0.0, 0.0], [0.3, -0.7, 0.9], [-1.0, 1.0, -1.0]] {
            let n = hex.shape(xi);
            let sum: f64 = n.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shape_functions_are_nodal() {
        let hex = unit_hex();
        for a in 0..8 {
            let n = hex.shape(SIGNS[a]);
            for b in 0..8 {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((n[b] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gradients_sum_to_zero() {
        // Σ_a ∇N_a = 0 (constant field has zero gradient).
        let hex = Hex8 {
            edges: [2.0, 1.0, 4.0],
        };
        let g = hex.shape_gradients([0.2, -0.4, 0.6]);
        for d in 0..3 {
            let s: f64 = g.iter().map(|ga| ga[d]).sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn gradients_reproduce_linear_field() {
        // u(x) = x should give du/dx = 1 everywhere.
        let hex = Hex8 {
            edges: [2.0, 3.0, 4.0],
        };
        // Corner x-coordinates for a box rooted at origin.
        let xs: Vec<f64> = SIGNS.iter().map(|s| (s[0] + 1.0) / 2.0 * 2.0).collect();
        let g = hex.shape_gradients([0.1, 0.5, -0.3]);
        let ddx: f64 = g.iter().zip(&xs).map(|(ga, x)| ga[0] * x).sum();
        assert!((ddx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stiffness_is_symmetric_with_rigid_body_nullspace() {
        let hex = Hex8 {
            edges: [1.5, 1.0, 2.0],
        };
        let ke = element_stiffness(&hex, &Material::silicon());
        // Symmetry.
        for r in 0..24 {
            for c in 0..24 {
                assert!((ke[r * 24 + c] - ke[c * 24 + r]).abs() < 1e-6);
            }
        }
        // Rigid translation in x: u = [1,0,0] at every node -> zero force.
        let mut u = [0.0; 24];
        for a in 0..8 {
            u[3 * a] = 1.0;
        }
        for r in 0..24 {
            let f: f64 = (0..24).map(|c| ke[r * 24 + c] * u[c]).sum();
            assert!(f.abs() < 1e-6, "rigid body mode produces force {f}");
        }
    }

    #[test]
    fn thermal_load_is_self_equilibrated() {
        // Free thermal expansion: total force must vanish componentwise.
        let hex = Hex8 {
            edges: [1.0, 2.0, 3.0],
        };
        let fe = element_thermal_load(&hex, &Material::copper());
        for d in 0..3 {
            let total: f64 = (0..8).map(|a| fe[3 * a + d]).sum();
            assert!(total.abs() < 1e-9);
        }
    }

    #[test]
    fn free_expansion_is_stress_free() {
        // If u = alpha*dT*x (pure thermal expansion), then K u = dT * f_th.
        let mat = Material::silicon();
        let hex = Hex8 {
            edges: [2.0, 2.0, 2.0],
        };
        let ke = element_stiffness(&hex, &mat);
        let fe = element_thermal_load(&hex, &mat);
        let dt = -250.0;
        // Corner coordinates of a box rooted at the origin.
        let mut u = [0.0; 24];
        for a in 0..8 {
            for d in 0..3 {
                let coord = (SIGNS[a][d] + 1.0) / 2.0 * hex.edges[d];
                u[3 * a + d] = mat.cte * dt * coord;
            }
        }
        for r in 0..24 {
            let ku: f64 = (0..24).map(|c| ke[r * 24 + c] * u[c]).sum();
            assert!(
                (ku - dt * fe[r]).abs()
                    < 1e-6 * (dt.abs() * fe.iter().fold(0.0f64, |m, v| m.max(v.abs()))),
                "row {r}: K u = {ku}, dT f = {}",
                dt * fe[r]
            );
        }
    }
}
