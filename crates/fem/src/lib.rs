//! 3-D linear thermoelastic finite elements on hexahedral meshes.
//!
//! This crate is the "ANSYS substitute" of the MORE-Stress reproduction: it
//! implements the governing equations of §3 of the paper (equilibrium,
//! isotropic thermoelastic constitutive law, small-strain kinematics) with
//! trilinear Hex8 elements, 2×2×2 Gauss quadrature, symmetric Dirichlet
//! elimination and direct (sparse Cholesky) or iterative (CG/GMRES) solves.
//!
//! It plays two roles:
//!
//! 1. **Reference solver** — [`solve_thermal_stress`] on the full array mesh
//!    produces the ground truth against which both MORE-Stress and the
//!    linear-superposition baseline are scored (normalized MAE of the
//!    mid-plane von Mises field, exactly as in Tables 1–3 of the paper).
//! 2. **Building block** — the one-shot local stage of the ROM assembles its
//!    unit-block operator with [`assemble_system`] and reuses the same
//!    element kernels, so the ROM error really is *only* the interface
//!    interpolation error, as the paper argues.
//!
//! # Example
//!
//! ```
//! use morestress_fem::{solve_thermal_stress, DirichletBcs, LinearSolver, MaterialSet};
//! use morestress_mesh::{unit_block_mesh, BlockResolution, TsvGeometry};
//!
//! # fn main() -> Result<(), morestress_fem::FemError> {
//! let geom = TsvGeometry::paper_defaults(15.0);
//! let mesh = unit_block_mesh(&geom, &BlockResolution::coarse(), true);
//! let mats = MaterialSet::tsv_defaults();
//! // Clamp top and bottom (scenario 1 boundary conditions).
//! let mut bcs = DirichletBcs::new();
//! let (_, _, npz) = mesh.lattice_dims();
//! bcs.clamp_nodes(&mesh.plane_nodes(2, 0));
//! bcs.clamp_nodes(&mesh.plane_nodes(2, npz - 1));
//! let sol = solve_thermal_stress(&mesh, &mats, -250.0, &bcs, LinearSolver::DirectCholesky)?;
//! assert_eq!(sol.displacement.len(), 3 * mesh.num_nodes());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops over parallel arrays are the FEM idiom

mod assemble;
mod bc;
mod driver;
mod element;
mod error;
mod export;
mod material;
mod stress;

pub use assemble::{assemble_system, AssembledSystem};
pub use bc::{DirichletBcs, ReducedSystem};
pub use driver::{
    solve_thermal_stress, solve_thermal_stress_many, FemSolution, LinearSolver, SolveStats,
};
pub use element::{element_stiffness, element_thermal_load, Hex8, GAUSS_2X2X2};
pub use error::FemError;
pub use export::{write_field_csv, write_vtk, ExportError};
pub use material::{Material, MaterialSet};
pub use stress::{
    normalized_mae, sample_von_mises, stress_at, PlaneGrid, ScalarField2d, StressSample,
};
