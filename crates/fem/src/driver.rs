//! The end-to-end full-FEM driver — the reproduction's "ANSYS substitute".
//!
//! Assembles the thermoelastic system on a mesh, applies Dirichlet
//! constraints by symmetric elimination, and solves through the unified
//! [`SolverBackend`] layer of `morestress-linalg` — directly (sparse
//! Cholesky) or iteratively (CG/GMRES — the paper also runs ANSYS with its
//! iterative solver for the large models). Wall time, iteration counts and
//! an analytic peak memory estimate are reported for the cost columns of
//! Tables 1 and 2. [`solve_thermal_stress_many`] batches several thermal
//! loads over one assembly + one prepared factorization.

use std::sync::Arc;
use std::time::{Duration, Instant};

use morestress_linalg::{CgOptions, MemoryFootprint, PrecondSpec, SolverBackend};
use morestress_mesh::HexMesh;

use crate::{assemble_system, DirichletBcs, FemError, MaterialSet, ReducedSystem};

/// Which linear solver the driver uses on the reduced system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinearSolver {
    /// Sparse Cholesky with RCM ordering (exact; memory-hungry on large
    /// meshes — which is precisely the cost the paper measures for FEM).
    DirectCholesky,
    /// Conjugate gradients with SSOR preconditioning.
    Cg {
        /// Relative residual tolerance.
        tol: f64,
    },
    /// Restarted GMRES with Jacobi preconditioning.
    Gmres {
        /// Relative residual tolerance.
        tol: f64,
    },
    /// Direct Cholesky below the DoF threshold, CG above it. This mirrors
    /// common practice (and the paper's ANSYS setup, which switches to the
    /// iterative solver for large models).
    Auto,
}

impl LinearSolver {
    /// Maps this selection to a `morestress-linalg` solver backend; every
    /// solve in this crate routes through the returned backend.
    pub fn backend(&self) -> Box<dyn SolverBackend> {
        match *self {
            LinearSolver::DirectCholesky => Box::new(morestress_linalg::DirectCholesky::default()),
            LinearSolver::Cg { tol } => Box::new(morestress_linalg::Cg {
                opts: CgOptions {
                    tol,
                    max_iter: 20_000,
                },
                precond: PrecondSpec::Ssor { omega: 1.2 },
            }),
            LinearSolver::Gmres { tol } => Box::new(morestress_linalg::Gmres::with_tol(tol)),
            LinearSolver::Auto => Box::new(morestress_linalg::Auto {
                direct_limit: AUTO_DIRECT_LIMIT,
                tol: 1e-9,
            }),
        }
    }
}

/// Cost accounting of one solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Wall-clock time of assembly + reduction + solve.
    pub wall_time: Duration,
    /// Analytic peak heap estimate (bytes) of the simultaneously-live major
    /// structures (stiffness, reduced system, factor/preconditioner,
    /// solution vectors).
    pub peak_bytes: usize,
    /// Total DoFs of the mesh (3 × nodes).
    pub total_dofs: usize,
    /// Free DoFs after constraint elimination.
    pub free_dofs: usize,
    /// Stored nonzeros of the reduced operator.
    pub nnz: usize,
    /// Iterations, if an iterative solver ran (for a batched solve: summed
    /// over the batch).
    pub iterations: Option<usize>,
    /// Name of the solver backend that actually ran ("cholesky", "cg",
    /// "gmres" — [`LinearSolver::Auto`] resolves to one of these).
    pub backend: &'static str,
}

/// A full-FEM thermal stress solution.
#[derive(Debug, Clone)]
pub struct FemSolution {
    /// Nodal displacements, `3 × num_nodes`, in mesh DoF order.
    pub displacement: Vec<f64>,
    /// Cost accounting.
    pub stats: SolveStats,
}

/// DoF threshold below which [`LinearSolver::Auto`] picks the direct solver.
const AUTO_DIRECT_LIMIT: usize = 120_000;

/// Solves the thermoelastic problem `−∇·σ(u) = 0` with thermal load `ΔT`
/// and the given Dirichlet constraints (Eq. 1 of the paper) on a mesh.
///
/// # Errors
///
/// Propagates [`FemError::UnknownMaterial`], [`FemError::FullyConstrained`]
/// and solver failures.
///
/// # Example
///
/// See the crate-level example.
pub fn solve_thermal_stress(
    mesh: &HexMesh,
    materials: &MaterialSet,
    delta_t: f64,
    bcs: &DirichletBcs,
    solver: LinearSolver,
) -> Result<FemSolution, FemError> {
    let mut solutions = solve_thermal_stress_many(mesh, materials, &[delta_t], bcs, solver)?;
    Ok(solutions.pop().expect("one load in, one solution out"))
}

/// Solves the thermoelastic problem for several thermal loads at once:
/// one assembly, one constraint reduction, one solver preparation
/// (factorization or preconditioner build), then a batched solve over all
/// loads via the backend's multi-RHS path, running on the shared
/// [`WorkPool`](morestress_linalg::WorkPool) (cap it globally with
/// `MORESTRESS_THREADS` or locally with `WorkPool::install`). With the
/// default direct backend the batch is solved in *panels*: workers claim
/// whole panels of right-hand sides and sweep the supernodal factor once
/// per panel, so the marginal cost per load is a fraction of a triangular
/// solve.
///
/// Returns one [`FemSolution`] per entry of `delta_ts`, in order. The
/// reported [`SolveStats`] are the *batch* aggregate (shared wall time and
/// summed iterations), since the whole point is that the per-load marginal
/// cost is a pair of triangular sweeps, not a full solve.
///
/// # Errors
///
/// Same as [`solve_thermal_stress`].
pub fn solve_thermal_stress_many(
    mesh: &HexMesh,
    materials: &MaterialSet,
    delta_ts: &[f64],
    bcs: &DirichletBcs,
    solver: LinearSolver,
) -> Result<Vec<FemSolution>, FemError> {
    let start = Instant::now();
    let sys = assemble_system(mesh, materials)?;

    // Reduce once with a zero load: `reduced.rhs` is then exactly the
    // constraint lifting term `−A_fb u_b`, which is load-independent, and
    // every requested load is a scalar multiple of the unit thermal load.
    let zero = vec![0.0; sys.thermal_load.len()];
    let reduced = ReducedSystem::new(&sys.stiffness, &zero, bcs)?;
    let rhs_set = reduced.rhs_for_scaled_loads(&sys.thermal_load, delta_ts);

    let mut peak = sys.stiffness.heap_bytes()
        + sys.thermal_load.heap_bytes()
        + reduced.a_ff.heap_bytes()
        + rhs_set
            .iter()
            .map(MemoryFootprint::heap_bytes)
            .sum::<usize>();

    let n_free = reduced.num_free();
    let prepared = solver.backend().prepare(Arc::clone(&reduced.a_ff))?;
    // `default_solve_threads` is the current pool's cap; the batch runs on
    // the shared pool's resident workers, so this composes safely with any
    // parallel caller (no thread multiplication).
    let batch = prepared.solve_many(&rhs_set, morestress_linalg::default_solve_threads())?;
    peak += batch.report.solver_bytes;

    // All k expanded solutions are resident at once — the batch aggregate
    // must count every one of them.
    let displacements: Vec<Vec<f64>> = batch.xs.iter().map(|x| reduced.expand(x)).collect();
    peak += displacements
        .iter()
        .map(MemoryFootprint::heap_bytes)
        .sum::<usize>();

    let stats = SolveStats {
        wall_time: start.elapsed(),
        peak_bytes: peak,
        total_dofs: 3 * mesh.num_nodes(),
        free_dofs: n_free,
        nnz: reduced.a_ff.nnz(),
        iterations: batch.report.iterations,
        backend: batch.report.backend,
    };
    Ok(displacements
        .into_iter()
        .map(|displacement| FemSolution {
            displacement,
            stats,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_von_mises, PlaneGrid};
    use morestress_mesh::{unit_block_mesh, BlockResolution, Grid1d, HexMesh, TsvGeometry, MAT_SI};

    fn clamped_top_bottom(mesh: &HexMesh) -> DirichletBcs {
        let (_, _, npz) = mesh.lattice_dims();
        let mut bcs = DirichletBcs::new();
        bcs.clamp_nodes(&mesh.plane_nodes(2, 0));
        bcs.clamp_nodes(&mesh.plane_nodes(2, npz - 1));
        bcs
    }

    #[test]
    fn homogeneous_clamped_slab_has_symmetric_solution() {
        let g = Grid1d::uniform(0.0, 10.0, 4);
        let zg = Grid1d::uniform(0.0, 5.0, 3);
        let mesh = HexMesh::from_grids(g.clone(), g, zg, |_| Some(MAT_SI));
        let mats = MaterialSet::tsv_defaults();
        let bcs = clamped_top_bottom(&mesh);
        let sol =
            solve_thermal_stress(&mesh, &mats, -250.0, &bcs, LinearSolver::DirectCholesky).unwrap();
        // Mirror symmetry: u_x at (x,y,z) = -u_x at (10-x,y,z).
        for (n, p) in mesh.nodes().iter().enumerate() {
            let mirrored = [10.0 - p[0], p[1], p[2]];
            let m = mesh
                .nodes()
                .iter()
                .position(|q| {
                    (q[0] - mirrored[0]).abs() < 1e-9
                        && (q[1] - mirrored[1]).abs() < 1e-9
                        && (q[2] - mirrored[2]).abs() < 1e-9
                })
                .unwrap();
            let ux = sol.displacement[3 * n];
            let ux_m = sol.displacement[3 * m];
            assert!(
                (ux + ux_m).abs() < 1e-8,
                "x-mirror asymmetry {ux} vs {ux_m}"
            );
        }
    }

    #[test]
    fn solvers_agree_on_tsv_block() {
        let geom = TsvGeometry::paper_defaults(15.0);
        let mesh = unit_block_mesh(&geom, &BlockResolution::coarse(), true);
        let mats = MaterialSet::tsv_defaults();
        let bcs = clamped_top_bottom(&mesh);
        let direct =
            solve_thermal_stress(&mesh, &mats, -250.0, &bcs, LinearSolver::DirectCholesky).unwrap();
        let cg = solve_thermal_stress(&mesh, &mats, -250.0, &bcs, LinearSolver::Cg { tol: 1e-11 })
            .unwrap();
        let gmres = solve_thermal_stress(
            &mesh,
            &mats,
            -250.0,
            &bcs,
            LinearSolver::Gmres { tol: 1e-11 },
        )
        .unwrap();
        let max_u = direct
            .displacement
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        for (a, b) in direct.displacement.iter().zip(&cg.displacement) {
            assert!((a - b).abs() < 1e-6 * max_u);
        }
        for (a, b) in direct.displacement.iter().zip(&gmres.displacement) {
            assert!((a - b).abs() < 1e-5 * max_u);
        }
        assert!(cg.stats.iterations.unwrap() > 0);
    }

    #[test]
    fn tsv_block_stress_is_tensile_in_silicon_under_cooling() {
        // Cooling from anneal: Cu contracts more than Si; near the via the
        // von Mises stress must be significant (order 100 MPa), far from it
        // much lower.
        let geom = TsvGeometry::paper_defaults(15.0);
        let mesh = unit_block_mesh(&geom, &BlockResolution::coarse(), true);
        let mats = MaterialSet::tsv_defaults();
        let bcs = clamped_top_bottom(&mesh);
        let sol =
            solve_thermal_stress(&mesh, &mats, -250.0, &bcs, LinearSolver::DirectCholesky).unwrap();
        let grid = PlaneGrid::new([0.0, 0.0], [15.0, 15.0], 25.0, 30, 30);
        let vm = sample_von_mises(&mesh, &mats, &sol.displacement, -250.0, &grid).unwrap();
        let peak = vm.max();
        assert!(
            peak > 50.0 && peak < 2000.0,
            "peak von Mises {peak} MPa out of physical range"
        );
        // Stress near the liner must exceed stress at the block corner.
        let near = crate::stress_at(
            &mesh,
            &mats,
            &sol.displacement,
            -250.0,
            [7.5 + 3.2, 7.5, 25.0],
        )
        .unwrap()
        .unwrap();
        let far = crate::stress_at(&mesh, &mats, &sol.displacement, -250.0, [1.0, 1.0, 25.0])
            .unwrap()
            .unwrap();
        assert!(
            near.von_mises > 2.0 * far.von_mises,
            "near {} vs far {}",
            near.von_mises,
            far.von_mises
        );
    }

    #[test]
    fn batched_loads_match_individual_solves() {
        let geom = TsvGeometry::paper_defaults(12.0);
        let mesh = unit_block_mesh(&geom, &BlockResolution::coarse(), true);
        let mats = MaterialSet::tsv_defaults();
        let bcs = clamped_top_bottom(&mesh);
        let loads = [-250.0, -125.0, 60.0, 10.0];
        let batch =
            solve_thermal_stress_many(&mesh, &mats, &loads, &bcs, LinearSolver::DirectCholesky)
                .unwrap();
        assert_eq!(batch.len(), loads.len());
        assert_eq!(batch[0].stats.backend, "cholesky");
        for (&dt, batched) in loads.iter().zip(&batch) {
            let single =
                solve_thermal_stress(&mesh, &mats, dt, &bcs, LinearSolver::DirectCholesky).unwrap();
            let scale = single
                .displacement
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
                .max(1e-30);
            for (a, b) in single.displacement.iter().zip(&batched.displacement) {
                assert!(
                    (a - b).abs() <= 1e-12 * scale,
                    "batched and individual solves disagree at ΔT={dt}"
                );
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = Grid1d::uniform(0.0, 1.0, 2);
        let mesh = HexMesh::from_grids(g.clone(), g.clone(), g, |_| Some(MAT_SI));
        let mats = MaterialSet::tsv_defaults();
        let mut bcs = DirichletBcs::new();
        bcs.clamp_nodes(&mesh.plane_nodes(2, 0));
        let sol = solve_thermal_stress(&mesh, &mats, -100.0, &bcs, LinearSolver::Auto).unwrap();
        assert_eq!(sol.stats.total_dofs, 81);
        assert_eq!(sol.stats.free_dofs, 81 - 27);
        assert!(sol.stats.peak_bytes > 0);
        assert!(sol.stats.nnz > 0);
    }
}
