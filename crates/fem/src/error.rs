use std::error::Error;
use std::fmt;

use morestress_linalg::LinalgError;
use morestress_mesh::MaterialId;

/// Errors produced by the FEM layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FemError {
    /// A mesh element references a material id with no registered material.
    UnknownMaterial {
        /// The unregistered material id.
        id: MaterialId,
    },
    /// The underlying linear solve failed.
    Solver(LinalgError),
    /// The problem has no free degrees of freedom (everything constrained).
    FullyConstrained,
}

impl fmt::Display for FemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FemError::UnknownMaterial { id } => {
                write!(f, "no material registered for id {id}")
            }
            FemError::Solver(e) => write!(f, "linear solve failed: {e}"),
            FemError::FullyConstrained => {
                write!(f, "all degrees of freedom are constrained")
            }
        }
    }
}

impl Error for FemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FemError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for FemError {
    fn from(e: LinalgError) -> Self {
        FemError::Solver(e)
    }
}
