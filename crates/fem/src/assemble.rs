//! Global assembly of the stiffness matrix and thermal load vector.
//!
//! The sparsity pattern is computed from mesh connectivity first, then
//! element matrices are scatter-added — this avoids the memory blow-up of a
//! triplet list on large array meshes. Structured meshes contain only a
//! handful of distinct element shapes, so element matrices are cached by
//! (edge lengths, material).

use std::collections::HashMap;

use morestress_linalg::CsrMatrix;
use morestress_mesh::HexMesh;

use crate::element::{element_stiffness, element_thermal_load, Hex8};
use crate::{FemError, MaterialSet};

/// The assembled (unconstrained) FEM system.
///
/// `stiffness` is the `3N × 3N` operator; `thermal_load` is the load for a
/// **unit** temperature change (`ΔT = 1`), matching the paper's
/// `A_local α = ΔT b_local` (Eq. 11) where ΔT multiplies the load.
#[derive(Debug, Clone)]
pub struct AssembledSystem {
    /// Global stiffness matrix (no boundary conditions applied).
    pub stiffness: CsrMatrix,
    /// Global thermal load for ΔT = 1.
    pub thermal_load: Vec<f64>,
}

/// Cache key: element edge lengths (bit patterns) + material id.
type ShapeKey = (u64, u64, u64, u16);

/// Assembles stiffness and unit thermal load for a mesh.
///
/// # Errors
///
/// [`FemError::UnknownMaterial`] if the mesh references an unregistered
/// material.
pub fn assemble_system(
    mesh: &HexMesh,
    materials: &MaterialSet,
) -> Result<AssembledSystem, FemError> {
    let ndof = 3 * mesh.num_nodes();

    // DoF-level sparsity pattern from the node adjacency.
    let adjacency = mesh.node_adjacency();
    let mut rows: Vec<Vec<usize>> = Vec::with_capacity(ndof);
    for neighbors in &adjacency {
        for comp in 0..3 {
            let _ = comp;
            let mut row = Vec::with_capacity(neighbors.len() * 3);
            for &m in neighbors {
                row.extend_from_slice(&[3 * m, 3 * m + 1, 3 * m + 2]);
            }
            rows.push(row);
        }
    }
    drop(adjacency);
    let mut stiffness = CsrMatrix::from_pattern(ndof, ndof, &rows);
    drop(rows);
    let mut load = vec![0.0; ndof];

    let mut cache: HashMap<ShapeKey, (Box<[f64; 24 * 24]>, [f64; 24])> = HashMap::new();
    for e in 0..mesh.num_elems() {
        let corners = mesh.elem_corners(e);
        let hex = Hex8::from_corners(&corners);
        let mat_id = mesh.material(e);
        let key: ShapeKey = (
            hex.edges[0].to_bits(),
            hex.edges[1].to_bits(),
            hex.edges[2].to_bits(),
            mat_id.0,
        );
        let (ke, fe) = match cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let material = materials.get(mat_id)?;
                let ke = Box::new(element_stiffness(&hex, material));
                let fe = element_thermal_load(&hex, material);
                e.insert((ke, fe))
            }
        };

        let conn = &mesh.elems()[e];
        let dofs: [usize; 24] = std::array::from_fn(|i| 3 * conn[i / 3] + i % 3);
        for (r, &gr) in dofs.iter().enumerate() {
            load[gr] += fe[r];
            let ke_row = &ke[r * 24..(r + 1) * 24];
            for (c, &gc) in dofs.iter().enumerate() {
                let v = ke_row[c];
                if v != 0.0 {
                    stiffness.add_at(gr, gc, v);
                }
            }
        }
    }

    Ok(AssembledSystem {
        stiffness,
        thermal_load: load,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use morestress_mesh::{Grid1d, HexMesh, MaterialId, MAT_SI};

    fn cube(n: usize) -> HexMesh {
        let g = Grid1d::uniform(0.0, 1.0, n);
        HexMesh::from_grids(g.clone(), g.clone(), g, |_| Some(MAT_SI))
    }

    #[test]
    fn assembled_stiffness_is_symmetric_with_rigid_nullspace() {
        let mesh = cube(2);
        let sys = assemble_system(&mesh, &MaterialSet::tsv_defaults()).unwrap();
        assert!(sys.stiffness.asymmetry() < 1e-6);
        // Rigid translation produces zero force.
        let n = mesh.num_nodes();
        let mut u = vec![0.0; 3 * n];
        for i in 0..n {
            u[3 * i + 2] = 1.0;
        }
        let f = sys.stiffness.spmv(&u);
        let worst = f.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(worst < 1e-5, "rigid mode force {worst}");
    }

    #[test]
    fn thermal_load_self_equilibrated() {
        let mesh = cube(3);
        let sys = assemble_system(&mesh, &MaterialSet::tsv_defaults()).unwrap();
        for d in 0..3 {
            let total: f64 = (0..mesh.num_nodes())
                .map(|i| sys.thermal_load[3 * i + d])
                .sum();
            assert!(total.abs() < 1e-6);
        }
    }

    #[test]
    fn unknown_material_is_reported() {
        let g = Grid1d::uniform(0.0, 1.0, 1);
        let mesh = HexMesh::from_grids(g.clone(), g.clone(), g, |_| Some(MaterialId(42)));
        let err = assemble_system(&mesh, &MaterialSet::tsv_defaults()).unwrap_err();
        assert!(matches!(err, FemError::UnknownMaterial { .. }));
    }

    #[test]
    fn pattern_covers_exactly_element_couplings() {
        let mesh = cube(2);
        let sys = assemble_system(&mesh, &MaterialSet::tsv_defaults()).unwrap();
        // Corner node (0,0,0) touches 1 element -> couples to 8 nodes * 3 dofs.
        let corner = mesh.lattice_node(0, 0, 0).unwrap();
        let (cols, _) = sys.stiffness.row(3 * corner);
        assert_eq!(cols.len(), 24);
        // Center node touches all 8 elements -> couples to all 27 nodes.
        let center = mesh.lattice_node(1, 1, 1).unwrap();
        let (cols, _) = sys.stiffness.row(3 * center);
        assert_eq!(cols.len(), 81);
    }
}
