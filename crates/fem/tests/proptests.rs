//! Property-based tests of the FEM kernels: physical invariants that must
//! hold for any material in range and any element shape.

use morestress_fem::{element_stiffness, element_thermal_load, Hex8, Material, StressSample};
use proptest::prelude::*;

fn material_strategy() -> impl Strategy<Value = Material> {
    (1.0f64..500_000.0, -0.4f64..0.45, -30e-6f64..30e-6)
        .prop_map(|(e, nu, a)| Material::new(e, nu, a))
}

fn hex_strategy() -> impl Strategy<Value = Hex8> {
    (0.1f64..20.0, 0.1f64..20.0, 0.1f64..20.0).prop_map(|(dx, dy, dz)| Hex8 {
        edges: [dx, dy, dz],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Element stiffness is symmetric and annihilates all six rigid-body
    /// modes for any material and element shape.
    #[test]
    fn stiffness_symmetry_and_rigid_modes(mat in material_strategy(), hex in hex_strategy()) {
        let ke = element_stiffness(&hex, &mat);
        let scale = ke.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
        for r in 0..24 {
            for c in 0..24 {
                prop_assert!((ke[r * 24 + c] - ke[c * 24 + r]).abs() < 1e-9 * scale);
            }
        }
        // Rigid modes: 3 translations + 3 (linearized) rotations.
        // Corner coordinates in local node order for a box rooted at origin.
        let signs = [
            [-1.0, -1.0, -1.0], [1.0, -1.0, -1.0], [1.0, 1.0, -1.0], [-1.0, 1.0, -1.0],
            [-1.0, -1.0, 1.0], [1.0, -1.0, 1.0], [1.0, 1.0, 1.0], [-1.0, 1.0, 1.0],
        ];
        let coord = |a: usize, d: usize| (signs[a][d] + 1.0) / 2.0 * hex.edges[d];
        let mut modes: Vec<[f64; 24]> = Vec::new();
        for d in 0..3 {
            let mut m = [0.0; 24];
            for a in 0..8 {
                m[3 * a + d] = 1.0;
            }
            modes.push(m);
        }
        // Rotations about z, x, y: u = omega × r.
        for (p, q) in [(0usize, 1usize), (1, 2), (2, 0)] {
            let mut m = [0.0; 24];
            for a in 0..8 {
                m[3 * a + p] = -coord(a, q);
                m[3 * a + q] = coord(a, p);
            }
            modes.push(m);
        }
        for mode in &modes {
            for r in 0..24 {
                let f: f64 = (0..24).map(|c| ke[r * 24 + c] * mode[c]).sum();
                let mode_scale = mode.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
                prop_assert!(f.abs() < 1e-7 * scale * mode_scale, "rigid mode force {f}");
            }
        }
    }

    /// The thermal load is self-equilibrated (no net force) for any
    /// material and element shape.
    #[test]
    fn thermal_load_self_equilibrated(mat in material_strategy(), hex in hex_strategy()) {
        let fe = element_thermal_load(&hex, &mat);
        let scale = fe.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
        for d in 0..3 {
            let total: f64 = (0..8).map(|a| fe[3 * a + d]).sum();
            prop_assert!(total.abs() < 1e-9 * scale);
        }
    }

    /// Free thermal expansion is exactly stress-free: K·u_th = ΔT·f_th.
    #[test]
    fn free_expansion_consistency(mat in material_strategy(), hex in hex_strategy(),
                                  dt in -400.0f64..400.0) {
        let ke = element_stiffness(&hex, &mat);
        let fe = element_thermal_load(&hex, &mat);
        let signs = [
            [-1.0, -1.0, -1.0], [1.0, -1.0, -1.0], [1.0, 1.0, -1.0], [-1.0, 1.0, -1.0],
            [-1.0, -1.0, 1.0], [1.0, -1.0, 1.0], [1.0, 1.0, 1.0], [-1.0, 1.0, 1.0],
        ];
        let mut u = [0.0; 24];
        for a in 0..8 {
            for d in 0..3 {
                u[3 * a + d] = mat.cte * dt * (signs[a][d] + 1.0) / 2.0 * hex.edges[d];
            }
        }
        let f_scale = fe.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30) * dt.abs().max(1.0);
        for r in 0..24 {
            let ku: f64 = (0..24).map(|c| ke[r * 24 + c] * u[c]).sum();
            prop_assert!((ku - dt * fe[r]).abs() < 1e-7 * f_scale);
        }
    }

    /// Von Mises invariants: zero for hydrostatic states, invariant under
    /// adding a hydrostatic component, and positively homogeneous.
    #[test]
    fn von_mises_properties(t in prop::array::uniform6(-100.0f64..100.0),
                            pressure in -100.0f64..100.0,
                            lambda in 0.0f64..10.0) {
        let vm = StressSample::from_tensor(t).von_mises;
        prop_assert!(vm >= 0.0);
        // Hydrostatic shift leaves von Mises unchanged.
        let shifted = [t[0] + pressure, t[1] + pressure, t[2] + pressure, t[3], t[4], t[5]];
        let vm_shifted = StressSample::from_tensor(shifted).von_mises;
        prop_assert!((vm - vm_shifted).abs() < 1e-8 * vm.max(1.0));
        // Positive homogeneity.
        let scaled = t.map(|v| lambda * v);
        let vm_scaled = StressSample::from_tensor(scaled).von_mises;
        prop_assert!((vm_scaled - lambda * vm).abs() < 1e-8 * vm.max(1.0) * lambda.max(1.0));
    }

    /// Lamé parameters round-trip to (E, ν): λ, μ → E, ν recovers inputs.
    #[test]
    fn lame_roundtrip(mat in material_strategy()) {
        let (la, mu) = mat.lame();
        let e = mu * (3.0 * la + 2.0 * mu) / (la + mu);
        let nu = la / (2.0 * (la + mu));
        prop_assert!((e - mat.youngs).abs() < 1e-6 * mat.youngs);
        prop_assert!((nu - mat.poisson).abs() < 1e-9);
    }
}
