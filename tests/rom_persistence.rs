//! ROM save/load: the one-shot local stage is expensive, so its output is
//! persistable; a reloaded model must answer global problems identically.

use more_stress::prelude::*;
use more_stress::rom::RomError;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("morestress-persist-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn save_load_roundtrip_preserves_solutions() {
    let geom = TsvGeometry::paper_defaults(15.0);
    let rom = LocalStage::new(
        &geom,
        &BlockResolution::coarse(),
        InterpolationGrid::new([3, 3, 3]),
        &MaterialSet::tsv_defaults(),
        BlockKind::Tsv,
    )
    .build(&LocalStageOptions::default())
    .expect("local stage");

    let path = temp_path("roundtrip.rom");
    rom.save(&path).expect("save");
    let loaded = ReducedOrderModel::load(&path).expect("load");

    assert_eq!(loaded.kind(), rom.kind());
    assert_eq!(loaded.num_dofs(), rom.num_dofs());
    assert_eq!(loaded.geometry(), rom.geometry());

    let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
    let a = SimulatorBuilder::from_models(rom, None)
        .build()
        .expect("simulator")
        .solve_array(&layout, -250.0, &GlobalBc::ClampedTopBottom)
        .expect("solve");
    let b = SimulatorBuilder::from_models(loaded, None)
        .build()
        .expect("simulator")
        .solve_array(&layout, -250.0, &GlobalBc::ClampedTopBottom)
        .expect("solve");
    for (x, y) in a.nodal_displacement().iter().zip(b.nodal_displacement()) {
        assert_eq!(x, y, "bitwise identical solutions after reload");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_files_are_rejected() {
    let path = temp_path("garbage.rom");
    std::fs::write(&path, b"this is not a rom file at all").expect("write");
    match ReducedOrderModel::load(&path) {
        Err(RomError::Format(_)) => {}
        other => panic!("expected Format error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_files_are_rejected() {
    let geom = TsvGeometry::paper_defaults(15.0);
    let rom = LocalStage::new(
        &geom,
        &BlockResolution::coarse(),
        InterpolationGrid::new([2, 2, 2]),
        &MaterialSet::tsv_defaults(),
        BlockKind::Dummy,
    )
    .build(&LocalStageOptions::default())
    .expect("local stage");
    let path = temp_path("truncated.rom");
    rom.save(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    assert!(
        ReducedOrderModel::load(&path).is_err(),
        "truncated file must not load"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn incompatible_models_are_rejected_by_simulator() {
    let geom = TsvGeometry::paper_defaults(15.0);
    let mats = MaterialSet::tsv_defaults();
    let build = |m: usize, kind: BlockKind| {
        LocalStage::new(
            &geom,
            &BlockResolution::coarse(),
            InterpolationGrid::new([m, m, m]),
            &mats,
            kind,
        )
        .build(&LocalStageOptions::default())
        .expect("local stage")
    };
    let tsv = build(3, BlockKind::Tsv);
    let dummy_wrong_grid = build(2, BlockKind::Dummy);
    match SimulatorBuilder::from_models(tsv, Some(dummy_wrong_grid)).build() {
        Err(RomError::Mismatch(_)) => {}
        other => panic!("expected Mismatch, got {:?}", other.map(|_| ())),
    }
}
