//! End-to-end scenario 2 (sub-modeled array in a chiplet): the ROM follows
//! the coarse boundary data everywhere, while superposition collapses where
//! the background stress varies sharply — the qualitative content of the
//! paper's Table 2.

use std::sync::Arc;

use more_stress::prelude::*;

struct Scenario2 {
    geom: TsvGeometry,
    res: BlockResolution,
    mats: MaterialSet,
    chiplet: Arc<ChipletModel>,
    layout: BlockLayout,
    array_size: f64,
    locations: [[f64; 2]; 5],
}

fn setup() -> Scenario2 {
    let geom = TsvGeometry::paper_defaults(15.0);
    let res = BlockResolution::coarse();
    let mats = MaterialSet::tsv_defaults();
    let chiplet_geom = ChipletGeometry::bench_defaults();
    let chiplet = Arc::new(
        ChipletModel::solve(&chiplet_geom, &ChipletResolution::coarse(), &mats, -250.0)
            .expect("chiplet solves"),
    );
    let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv).padded(1);
    let array_size = geom.pitch * layout.nx() as f64;
    let locations = standard_locations(&chiplet_geom, array_size);
    Scenario2 {
        geom,
        res,
        mats,
        chiplet,
        layout,
        array_size,
        locations,
    }
}

fn reference_at(s: &Scenario2, sub: &Submodel, g: usize) -> ScalarField2d {
    let mesh = array_mesh(&s.geom, &s.res, &s.layout);
    let mut bcs = DirichletBcs::new();
    let bc_fn = sub.boundary_displacement(&s.chiplet);
    for &n in &mesh.boundary_box_nodes() {
        bcs.set_node(n, bc_fn(mesh.nodes()[n]));
    }
    let fem = solve_thermal_stress(&mesh, &s.mats, -250.0, &bcs, LinearSolver::Auto)
        .expect("submodel reference");
    let grid = PlaneGrid::new(
        [0.0, 0.0],
        [s.array_size, s.array_size],
        0.5 * s.geom.height,
        g * s.layout.nx(),
        g * s.layout.ny(),
    );
    sample_von_mises(&mesh, &s.mats, &fem.displacement, -250.0, &grid).expect("sampling")
}

#[test]
fn rom_handles_sharp_background_better_than_superposition() {
    let s = setup();
    let g = 8;
    // loc5 = interposer corner: the hardest background for superposition.
    let sub = Submodel::new(&s.chiplet, s.locations[4], s.array_size);
    let reference = reference_at(&s, &sub, g);

    let sim = MoreStressSimulator::builder(&s.geom)
        .resolution(s.res)
        .interpolation([4, 4, 4])
        .materials(s.mats.clone())
        .build_dummy(true)
        .build()
        .expect("simulator");
    let bc = GlobalBc::SubmodelBoundary(sub.boundary_displacement(&s.chiplet));
    let sol = sim.solve_array(&s.layout, -250.0, &bc).expect("rom solve");
    let rom_field = sim
        .sample_midplane(&s.layout, &sol, -250.0, g)
        .expect("sampling");
    let rom_err = normalized_mae(&rom_field, &reference);

    let superpos = SuperpositionSolver::build(&s.geom, &s.res, &s.mats).expect("kernel");
    let bg = sub.background_stress(&s.chiplet);
    let ls_field = superpos.evaluate_array_with_background(&s.layout, -250.0, g, |p| bg(p));
    let ls_err = normalized_mae(&ls_field, &reference);

    println!(
        "loc5: ROM {:.2}%, LS {:.2}%",
        rom_err * 100.0,
        ls_err * 100.0
    );
    assert!(
        rom_err * 2.0 < ls_err,
        "ROM ({rom_err}) must be at least 2x more accurate than superposition ({ls_err}) at loc5"
    );
}

#[test]
fn rom_submodel_error_converges_with_interpolation_order() {
    // Guards against systematic sub-modeling bugs: the only error source is
    // the boundary interpolation, so refining the interpolation grid must
    // shrink the error toward zero.
    let s = setup();
    let g = 8;
    let sub = Submodel::new(&s.chiplet, s.locations[2], s.array_size); // die corner
    let reference = reference_at(&s, &sub, g);
    let mut errors = Vec::new();
    for m in [3usize, 6] {
        let sim = MoreStressSimulator::builder(&s.geom)
            .resolution(s.res)
            .interpolation([m, m, m])
            .materials(s.mats.clone())
            .build_dummy(true)
            .build()
            .expect("simulator");
        let bc = GlobalBc::SubmodelBoundary(sub.boundary_displacement(&s.chiplet));
        let sol = sim.solve_array(&s.layout, -250.0, &bc).expect("rom solve");
        let field = sim
            .sample_midplane(&s.layout, &sol, -250.0, g)
            .expect("sampling");
        errors.push(normalized_mae(&field, &reference));
    }
    println!(
        "loc3 convergence: (3,3,3) {:.3}% -> (6,6,6) {:.3}%",
        errors[0] * 100.0,
        errors[1] * 100.0
    );
    assert!(
        errors[1] < 0.5 * errors[0],
        "error must at least halve from (3,3,3) ({}) to (6,6,6) ({})",
        errors[0],
        errors[1]
    );
    assert!(
        errors[1] < 0.03,
        "(6,6,6) sub-model error {} < 3%",
        errors[1]
    );
}

#[test]
fn dummy_padding_moves_boundary_error_away_from_the_core() {
    // §4.4: the sub-model boundary must be far enough from the part of
    // interest; dummy blocks provide that distance. Truth: the fine solve on
    // the padded box. Applying the coarse boundary data directly on the
    // un-padded core box (boundary adjacent to the TSVs) must hurt the core
    // region more than solving with a dummy ring does — the coarse model
    // knows nothing about the via-induced displacement wiggles it clamps.
    let s = setup();
    let g = 8;
    let core = BlockLayout::uniform(2, 2, BlockKind::Tsv);
    let padded = core.padded(1);
    let p = s.geom.pitch;

    // Place the padded box at loc1; the core box sits one pitch inside it.
    let padded_origin = s.locations[0];
    let core_origin = [padded_origin[0] + p, padded_origin[1] + p];
    let padded_size = p * padded.nx() as f64;
    let core_size = p * core.nx() as f64;

    let solve_fine = |layout: &BlockLayout, origin: [f64; 2], size: f64| -> ScalarField2d {
        let sub = Submodel::new(&s.chiplet, origin, size);
        let mesh = array_mesh(&s.geom, &s.res, layout);
        let mut bcs = DirichletBcs::new();
        let bc_fn = sub.boundary_displacement(&s.chiplet);
        for &n in &mesh.boundary_box_nodes() {
            bcs.set_node(n, bc_fn(mesh.nodes()[n]));
        }
        let fem = solve_thermal_stress(&mesh, &s.mats, -250.0, &bcs, LinearSolver::Auto)
            .expect("fine solve");
        let grid = PlaneGrid::new(
            [0.0, 0.0],
            [size, size],
            0.5 * s.geom.height,
            g * layout.nx(),
            g * layout.ny(),
        );
        sample_von_mises(&mesh, &s.mats, &fem.displacement, -250.0, &grid).expect("sampling")
    };

    let truth = solve_fine(&padded, padded_origin, padded_size);
    let near = solve_fine(&core, core_origin, core_size);

    // Same physical sample points: the padded field's interior window.
    let truth_core = truth.subregion(g, g, 2 * g, 2 * g);
    let mae = |a: &ScalarField2d, b: &ScalarField2d| -> f64 {
        let m: f64 = a
            .values
            .iter()
            .zip(&b.values)
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
            / a.values.len() as f64;
        m / b.max()
    };
    let err_near = mae(&near, &truth_core);

    // ROM on the padded box: boundary one ring away from the core.
    let sim = MoreStressSimulator::builder(&s.geom)
        .resolution(s.res)
        .interpolation([4, 4, 4])
        .materials(s.mats.clone())
        .build_dummy(true)
        .build()
        .expect("simulator");
    let sub = Submodel::new(&s.chiplet, padded_origin, padded_size);
    let bc = GlobalBc::SubmodelBoundary(sub.boundary_displacement(&s.chiplet));
    let sol = sim.solve_array(&padded, -250.0, &bc).expect("rom solve");
    let rom_field = sim
        .sample_midplane(&padded, &sol, -250.0, g)
        .expect("sampling");
    let err_far = mae(&rom_field.subregion(g, g, 2 * g, 2 * g), &truth_core);

    println!(
        "core error: coarse BC adjacent to TSVs {:.3}%, ROM behind a dummy ring {:.3}%",
        err_near * 100.0,
        err_far * 100.0
    );
    assert!(
        err_far < err_near,
        "padding + ROM ({err_far}) should beat un-padded coarse clamping ({err_near})"
    );
}
