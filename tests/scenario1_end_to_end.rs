//! End-to-end scenario 1 (standalone clamped arrays): MORE-Stress must beat
//! the linear-superposition baseline where coupling matters, at comparable
//! cost, with errors against our full-FEM reference — the qualitative
//! content of the paper's Table 1.

use more_stress::prelude::*;

#[test]
fn rom_beats_superposition_on_dense_array() {
    // p = 10 µm is the paper's hard case: adjacent-TSV coupling is strong.
    let geom = TsvGeometry::paper_defaults(10.0);
    let res = BlockResolution::coarse();
    let mats = MaterialSet::tsv_defaults();
    let delta_t = -250.0;
    let layout = BlockLayout::uniform(3, 3, BlockKind::Tsv);
    let g = 10;

    let (reference, _) = reference_midplane_field(
        &geom,
        &res,
        &mats,
        &layout,
        delta_t,
        g,
        LinearSolver::DirectCholesky,
    )
    .expect("reference");

    let sim = MoreStressSimulator::builder(&geom)
        .resolution(res)
        .interpolation([5, 5, 5])
        .materials(mats.clone())
        .build()
        .expect("simulator");
    let solution = sim
        .solve_array(&layout, delta_t, &GlobalBc::ClampedTopBottom)
        .expect("rom solve");
    let rom_field = sim
        .sample_midplane(&layout, &solution, delta_t, g)
        .expect("rom sampling");
    let rom_err = normalized_mae(&rom_field, &reference);

    let superpos = SuperpositionSolver::build(&geom, &res, &mats).expect("kernel");
    let ls_field = superpos.evaluate_array(&layout, delta_t, g);
    let ls_err = normalized_mae(&ls_field, &reference);

    println!(
        "p=10 3x3: ROM {:.3}%, LS {:.3}%",
        rom_err * 100.0,
        ls_err * 100.0
    );
    assert!(
        rom_err < ls_err,
        "ROM {rom_err} must beat superposition {ls_err}"
    );
    assert!(rom_err < 0.02, "ROM error {rom_err} should be below 2%");
}

#[test]
fn rom_reuses_one_local_stage_for_many_problems() {
    // The one-shot property: a single ROM answers different array sizes and
    // thermal loads; responses are linear in ΔT.
    let geom = TsvGeometry::paper_defaults(15.0);
    let sim = MoreStressSimulator::builder(&geom)
        .build()
        .expect("simulator");

    let small = BlockLayout::uniform(2, 2, BlockKind::Tsv);
    let large = BlockLayout::uniform(6, 3, BlockKind::Tsv);
    for layout in [&small, &large] {
        let a = sim
            .solve_array(layout, -125.0, &GlobalBc::ClampedTopBottom)
            .expect("solve");
        let b = sim
            .solve_array(layout, -250.0, &GlobalBc::ClampedTopBottom)
            .expect("solve");
        let peak = b
            .nodal_displacement()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(peak > 0.0);
        for (x, y) in a.nodal_displacement().iter().zip(b.nodal_displacement()) {
            assert!(
                (2.0 * x - y).abs() < 1e-8 * peak.max(1e-30),
                "linearity in thermal load"
            );
        }
    }
}

#[test]
fn global_stage_cost_grows_mildly_with_array_size() {
    // The global-system DoF count grows like the array area × surface nodes,
    // orders of magnitude below fine-mesh DoFs — the root of the speedup.
    let geom = TsvGeometry::paper_defaults(15.0);
    let res = BlockResolution::coarse();
    let sim = MoreStressSimulator::builder(&geom)
        .resolution(res)
        .interpolation([4, 4, 4])
        .build()
        .expect("simulator");
    let fine_dofs_per_block = sim.tsv_model().local_stats.fine_dofs;
    for size in [4usize, 8] {
        let layout = BlockLayout::uniform(size, size, BlockKind::Tsv);
        let sol = sim
            .solve_array(&layout, -250.0, &GlobalBc::ClampedTopBottom)
            .expect("solve");
        let full_fem_dofs = fine_dofs_per_block * size * size; // upper bound
        assert!(
            sol.stats.total_dofs * 10 < full_fem_dofs,
            "{size}x{size}: reduced DoFs {} not ≪ fine DoFs {full_fem_dofs}",
            sol.stats.total_dofs
        );
    }
}
