//! Hybrid (TSV + dummy) abstract meshes: §4.4 notes that "the standard
//! assembly procedure can handle hybrid elements without difficulty" — these
//! tests hold the reproduction to that claim against full FEM.

use more_stress::prelude::*;

#[test]
fn checkerboard_hybrid_array_matches_full_fem() {
    let geom = TsvGeometry::paper_defaults(15.0);
    let res = BlockResolution::coarse();
    let mats = MaterialSet::tsv_defaults();
    let delta_t = -250.0;
    let g = 8;

    // A 3×3 checkerboard of TSV and dummy blocks.
    let mut layout = BlockLayout::uniform(3, 3, BlockKind::Tsv);
    for j in 0..3 {
        for i in 0..3 {
            if (i + j) % 2 == 1 {
                layout.set_kind(i, j, BlockKind::Dummy);
            }
        }
    }

    // Reference: full FEM of the same hybrid domain.
    let mesh = array_mesh(&geom, &res, &layout);
    let (_, _, npz) = mesh.lattice_dims();
    let mut bcs = DirichletBcs::new();
    bcs.clamp_nodes(&mesh.plane_nodes(2, 0));
    bcs.clamp_nodes(&mesh.plane_nodes(2, npz - 1));
    let fem = solve_thermal_stress(&mesh, &mats, delta_t, &bcs, LinearSolver::DirectCholesky)
        .expect("reference");
    let grid = PlaneGrid::new([0.0, 0.0], [45.0, 45.0], 0.5 * geom.height, g * 3, g * 3);
    let reference =
        sample_von_mises(&mesh, &mats, &fem.displacement, delta_t, &grid).expect("sampling");

    // ROM with both block kinds.
    let sim = MoreStressSimulator::builder(&geom)
        .resolution(res)
        .interpolation([5, 5, 5])
        .materials(mats.clone())
        .build_dummy(true)
        .build()
        .expect("simulator");
    let sol = sim
        .solve_array(&layout, delta_t, &GlobalBc::ClampedTopBottom)
        .expect("rom solve");
    let field = sim
        .sample_midplane(&layout, &sol, delta_t, g)
        .expect("sampling");
    let err = normalized_mae(&field, &reference);
    println!("checkerboard hybrid: {:.3}%", err * 100.0);
    assert!(err < 0.02, "hybrid assembly error {err} should be < 2%");
}

#[test]
fn dummy_blocks_carry_much_less_stress() {
    let geom = TsvGeometry::paper_defaults(15.0);
    let mats = MaterialSet::tsv_defaults();
    let mut layout = BlockLayout::uniform(2, 1, BlockKind::Tsv);
    layout.set_kind(1, 0, BlockKind::Dummy);
    let sim = MoreStressSimulator::builder(&geom)
        .interpolation([4, 4, 4])
        .materials(mats.clone())
        .build_dummy(true)
        .build()
        .expect("simulator");
    let sol = sim
        .solve_array(&layout, -250.0, &GlobalBc::ClampedTopBottom)
        .expect("solve");
    let field = sim
        .sample_midplane(&layout, &sol, -250.0, 10)
        .expect("sampling");
    // Peak in the TSV half vs peak in the dummy half.
    let tsv_half = field.subregion(0, 0, 10, 10);
    let dummy_half = field.subregion(10, 0, 10, 10);
    // The dummy half still carries the clamped-slab background plus the
    // neighbor TSV's spillover, so the contrast is bounded (~3x here).
    assert!(
        tsv_half.max() > 2.5 * dummy_half.max(),
        "TSV half {} should dominate dummy half {}",
        tsv_half.max(),
        dummy_half.max()
    );
}
