//! Scenario 1 of the paper, scaled for a laptop: standalone TSV arrays with
//! clamped top/bottom surfaces, comparing the full-FEM reference, the
//! linear-superposition baseline and MORE-Stress on runtime, memory and
//! accuracy (Table 1's structure).
//!
//! Run with:
//! ```sh
//! cargo run --release --example array_scaling [max_array_size]
//! ```

use more_stress::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_size: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    let res = BlockResolution::coarse();
    let mats = MaterialSet::tsv_defaults();
    let delta_t = -250.0;
    let samples = 12;

    for pitch in [15.0, 10.0] {
        let geom = TsvGeometry::paper_defaults(pitch);
        println!("\n=== pitch = {pitch} µm ===");

        // One-shot stages for both fast methods.
        let sim = MoreStressSimulator::builder(&geom)
            .resolution(res)
            .interpolation([4, 4, 4])
            .materials(mats.clone())
            .build()?;
        let superpos = SuperpositionSolver::build(&geom, &res, &mats)?;
        println!(
            "one-shot: ROM local stage {:.2?}, superposition kernel {:.2?}",
            sim.tsv_model().local_stats.build_time,
            superpos.stats.build_time
        );

        println!(
            "{:>6} | {:>12} {:>9} | {:>10} {:>8} | {:>10} {:>8}",
            "array", "FEM time", "FEM MB", "LS time", "LS err", "ROM time", "ROM err"
        );
        for size in (2..=max_size).step_by(2) {
            let layout = BlockLayout::uniform(size, size, BlockKind::Tsv);

            // Full-FEM reference ("ANSYS substitute").
            let t0 = std::time::Instant::now();
            let (reference, fem_stats) = reference_midplane_field(
                &geom,
                &res,
                &mats,
                &layout,
                delta_t,
                samples,
                LinearSolver::Auto,
            )?;
            let fem_time = t0.elapsed();

            // Linear superposition.
            let t0 = std::time::Instant::now();
            let ls_field = superpos.evaluate_array(&layout, delta_t, samples);
            let ls_time = t0.elapsed();
            let ls_err = normalized_mae(&ls_field, &reference);

            // MORE-Stress.
            let t0 = std::time::Instant::now();
            let solution = sim.solve_array(&layout, delta_t, &GlobalBc::ClampedTopBottom)?;
            let rom_field = sim.sample_midplane(&layout, &solution, delta_t, samples)?;
            let rom_time = t0.elapsed();
            let rom_err = normalized_mae(&rom_field, &reference);

            println!(
                "{size:>3}x{size:<2} | {fem_time:>12.2?} {:>9.1} | {ls_time:>10.2?} {:>7.2}% | {rom_time:>10.2?} {:>7.2}%",
                fem_stats.peak_bytes as f64 / 1e6,
                ls_err * 100.0,
                rom_err * 100.0,
            );
        }
    }
    println!("\nExpected shape (Table 1): FEM cost explodes with array size; both fast");
    println!("methods stay flat; ROM error ≈ an order of magnitude below superposition,");
    println!("and superposition degrades further at pitch 10 µm.");
    Ok(())
}
