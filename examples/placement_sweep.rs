//! Keep-out-zone placement sweep on the incremental re-factorization
//! path: starting from a full TSV array, each candidate move swaps a 2×2
//! block patch to dummy silicon and re-solves with
//! [`MoreStressSimulator::resolve_perturbed`]. A swap is value-only (the
//! lattice pattern depends only on the array shape), so the hoisted
//! sharded backend re-factors just the shards the patch touches, reuses
//! every other shard's factor and stored clique, and rebuilds only the
//! small interface system — the per-move economics a placement or
//! optimization loop actually pays. The incremental answer is bitwise
//! identical to a from-scratch solve of the same layout.
//!
//! Run with:
//! ```sh
//! cargo run --release --example placement_sweep [array_size] [shards]
//! ```

use more_stress::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(8);
    let shards: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let delta_t = -250.0;
    let bc = GlobalBc::ClampedTopBottom;
    let samples = 10;

    let geom = TsvGeometry::paper_defaults(15.0);
    let sim = MoreStressSimulator::builder(&geom)
        .interpolation([4, 4, 4])
        .shards(shards)
        .build_dummy(true)
        .build()?;
    println!(
        "one-shot: TSV + dummy ROMs in {:.2?}",
        sim.tsv_model().local_stats.build_time
    );

    // Baseline: the full TSV array, solved cold (full sharded prepare).
    let base = BlockLayout::uniform(size, size, BlockKind::Tsv);
    let t0 = std::time::Instant::now();
    let cold = sim.solve_array(&base, delta_t, &bc)?;
    let cold_time = t0.elapsed();
    let field = sim.sample_midplane(&base, &cold, delta_t, samples)?;
    println!(
        "baseline {size}x{size}: cold solve {cold_time:.2?} ({} shards, {} interface DoFs), peak von Mises {:.0} MPa",
        cold.stats.shards, cold.stats.interface_dofs, field.max()
    );

    // Sweep 2×2 keep-out patches along the diagonal: each move is one
    // incremental re-solve through the same simulator.
    println!(
        "\n{:>10} | {:>12} | {:>11} | {:>14}",
        "keep-out", "re-solve", "refactored", "peak von Mises"
    );
    for corner in 0..size.saturating_sub(1) {
        let mut layout = base.clone();
        for di in 0..2 {
            for dj in 0..2 {
                layout.set_kind(corner + di, corner + dj, BlockKind::Dummy);
            }
        }
        let t0 = std::time::Instant::now();
        let solution = sim.resolve_perturbed(&layout, delta_t, &bc)?;
        let move_time = t0.elapsed();
        let field = sim.sample_midplane(&layout, &solution, delta_t, samples)?;
        println!(
            "  ({corner},{corner}) 2x2 | {move_time:>12.2?} | {:>5} of {:>2} | {:>10.0} MPa",
            solution.stats.shards_refactored,
            solution.stats.shards,
            field.max()
        );
    }
    println!(
        "\nEach move re-factored only the shards its patch touches; every other\n\
         shard factor and clique was reused, and the result is bitwise identical\n\
         to a from-scratch solve of the same layout."
    );
    Ok(())
}
