//! Quickstart: build the one-shot reduced-order model for the paper's TSV,
//! then solve arrays of several sizes under the fabrication thermal load and
//! print the peak mid-plane von Mises stress of each.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use more_stress::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The TSV of §5.2: d = 5 µm, h = 50 µm, t = 0.5 µm, pitch 15 µm.
    let geom = TsvGeometry::paper_defaults(15.0);
    let delta_t = -250.0; // anneal at 275 °C → room temperature 25 °C

    println!("== MORE-Stress quickstart ==");
    println!(
        "TSV: d = {} µm, h = {} µm, liner = {} µm, pitch = {} µm, ΔT = {delta_t} °C",
        geom.diameter, geom.height, geom.liner, geom.pitch
    );

    // One-shot local stage (performed once per geometry/material set).
    let sim = MoreStressSimulator::builder(&geom)
        .resolution(BlockResolution::medium())
        .interpolation([4, 4, 4])
        .build()?;
    let stats = &sim.tsv_model().local_stats;
    println!(
        "local stage: {} fine DoFs -> {} element DoFs in {:.2?}",
        stats.fine_dofs, stats.num_basis, stats.build_time
    );

    // Global stage: arrays of any size reuse the same model.
    for size in [5usize, 10, 20] {
        let layout = BlockLayout::uniform(size, size, BlockKind::Tsv);
        let solution = sim.solve_array(&layout, delta_t, &GlobalBc::ClampedTopBottom)?;
        let field = sim.sample_midplane(&layout, &solution, delta_t, 20)?;
        println!(
            "{size:>2}x{size:<2} array: global stage {:>8.2?} ({} DoFs, {} GMRES iters), \
             peak von Mises = {:.0} MPa",
            solution.stats.wall_time,
            solution.stats.total_dofs,
            solution.stats.iterations,
            field.max()
        );
    }
    Ok(())
}
