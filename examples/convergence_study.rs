//! The convergence study of Table 3 / Fig. 6, scaled for a laptop: sweep the
//! number of Lagrange interpolation nodes per axis and report element DoFs
//! `n`, local/global runtimes and the error against the full-FEM reference.
//!
//! Run with:
//! ```sh
//! cargo run --release --example convergence_study
//! ```

use more_stress::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = TsvGeometry::paper_defaults(15.0);
    let res = BlockResolution::coarse();
    let mats = MaterialSet::tsv_defaults();
    let delta_t = -250.0;
    let layout = BlockLayout::uniform(4, 4, BlockKind::Tsv);
    let samples = 12;

    println!("reference: full FEM on the 4x4 array ...");
    let (reference, fem_stats) = reference_midplane_field(
        &geom,
        &res,
        &mats,
        &layout,
        delta_t,
        samples,
        LinearSolver::Auto,
    )?;
    println!(
        "  {} DoFs in {:.2?}\n",
        fem_stats.total_dofs, fem_stats.wall_time
    );

    println!(
        "{:>9} | {:>5} | {:>12} | {:>12} | {:>9}",
        "(nx,ny,nz)", "n", "local stage", "global stage", "error"
    );
    for m in 2..=6usize {
        let sim = MoreStressSimulator::builder(&geom)
            .resolution(res)
            .interpolation([m, m, m])
            .materials(mats.clone())
            .build()?;
        let solution = sim.solve_array(&layout, delta_t, &GlobalBc::ClampedTopBottom)?;
        let field = sim.sample_midplane(&layout, &solution, delta_t, samples)?;
        let err = normalized_mae(&field, &reference);
        println!(
            "({m},{m},{m})   | {:>5} | {:>12.2?} | {:>12.2?} | {:>8.3}%",
            sim.tsv_model().num_dofs(),
            sim.tsv_model().local_stats.build_time,
            solution.stats.wall_time,
            err * 100.0
        );
    }
    println!("\nExpected shape (Table 3 / Fig. 6): error falls rapidly as n grows while");
    println!("both stages stay orders of magnitude cheaper than the full FEM reference.");
    Ok(())
}
