//! Scenario 2 of the paper, scaled for a laptop: a TSV array embedded at the
//! five standard locations of a chiplet (Fig. 5(b)), simulated through
//! sub-modeling — a coarse package-level solve provides displacement
//! boundary conditions, dummy blocks pad the array, and the three methods
//! are compared per location (Table 2's structure).
//!
//! Run with:
//! ```sh
//! cargo run --release --example chiplet_submodel
//! ```

use std::sync::Arc;

use more_stress::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = TsvGeometry::paper_defaults(15.0);
    let res = BlockResolution::coarse();
    let mats = MaterialSet::tsv_defaults();
    let delta_t = -250.0;
    let samples = 10;

    // The TSV array: 3×3 padded by one ring of dummy blocks (the paper pads
    // its 15×15 array with two rings).
    let core = 3usize;
    let rings = 1usize;
    let layout = BlockLayout::uniform(core, core, BlockKind::Tsv).padded(rings);
    let array_size = geom.pitch * layout.nx() as f64;

    // Coarse package model (the paper uses a coarse ANSYS model here).
    println!("solving coarse chiplet model ...");
    let chiplet_geom = ChipletGeometry::bench_defaults();
    let chiplet = Arc::new(ChipletModel::solve(
        &chiplet_geom,
        &ChipletResolution::coarse(),
        &mats,
        delta_t,
    )?);
    println!(
        "  warpage = {:.2} µm (coarse solve {:.2?})\n",
        chiplet.warpage(),
        chiplet.solve_time
    );

    // One-shot stages.
    let sim = MoreStressSimulator::builder(&geom)
        .resolution(res)
        .interpolation([4, 4, 4])
        .materials(mats.clone())
        .build_dummy(true)
        .build()?;
    let superpos = SuperpositionSolver::build(&geom, &res, &mats)?;

    println!(
        "{:>5} | {:>12} | {:>10} {:>8} | {:>10} {:>8}",
        "loc", "FEM time", "LS time", "LS err", "ROM time", "ROM err"
    );
    for (idx, origin_xy) in standard_locations(&chiplet_geom, array_size)
        .into_iter()
        .enumerate()
    {
        let sub = Submodel::new(&chiplet, origin_xy, array_size);

        // Ground truth: full FEM of the sub-model with coarse-displacement
        // boundary conditions on all outer faces.
        let t0 = std::time::Instant::now();
        let mesh = array_mesh(&geom, &res, &layout);
        let mut bcs = DirichletBcs::new();
        let bc_fn = sub.boundary_displacement(&chiplet);
        for &n in &mesh.boundary_box_nodes() {
            bcs.set_node(n, bc_fn(mesh.nodes()[n]));
        }
        let fem = solve_thermal_stress(&mesh, &mats, delta_t, &bcs, LinearSolver::Auto)?;
        let grid = PlaneGrid::new(
            [0.0, 0.0],
            [array_size, array_size],
            0.5 * geom.height,
            samples * layout.nx(),
            samples * layout.ny(),
        );
        let reference = sample_von_mises(&mesh, &mats, &fem.displacement, delta_t, &grid)?;
        let fem_time = t0.elapsed();

        // Linear superposition with the coarse background stress.
        let t0 = std::time::Instant::now();
        let bg = sub.background_stress(&chiplet);
        let ls_field =
            superpos.evaluate_array_with_background(&layout, delta_t, samples, |p| bg(p));
        let ls_time = t0.elapsed();
        let ls_err = normalized_mae(&ls_field, &reference);

        // MORE-Stress through sub-modeling.
        let t0 = std::time::Instant::now();
        let bc = GlobalBc::SubmodelBoundary(sub.boundary_displacement(&chiplet));
        let solution = sim.solve_array(&layout, delta_t, &bc)?;
        let rom_field = sim.sample_midplane(&layout, &solution, delta_t, samples)?;
        let rom_time = t0.elapsed();
        let rom_err = normalized_mae(&rom_field, &reference);

        println!(
            "loc{:<2} | {fem_time:>12.2?} | {ls_time:>10.2?} {:>7.2}% | {rom_time:>10.2?} {:>7.2}%",
            idx + 1,
            ls_err * 100.0,
            rom_err * 100.0,
        );
    }
    println!("\nExpected shape (Table 2): ROM errors stay low and uniform across");
    println!("locations; superposition degrades near the die corner (loc3) and the");
    println!("interposer corner (loc5), where the background stress varies sharply.");
    Ok(())
}
