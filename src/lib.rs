//! **MORE-Stress** — Model Order Reduction based Efficient Numerical
//! Algorithm for Thermal Stress Simulation of TSV Arrays in 2.5D/3D IC.
//!
//! A from-scratch Rust reproduction of the DATE 2025 paper by Zhu, Wang,
//! Lin, Wang and Huang (arXiv:2411.12690). This facade crate re-exports the
//! whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`rom`] | `morestress-core` | the MORE-Stress algorithm (local stage, global stage, sub-modeling, reconstruction) |
//! | [`fem`] | `morestress-fem` | the full-FEM reference solver ("ANSYS substitute"), materials, stress recovery |
//! | [`mesh`] | `morestress-mesh` | graded structured hex meshes of unit blocks, arrays and chiplet stacks |
//! | [`linalg`] | `morestress-linalg` | CSR, sparse Cholesky, CG, GMRES, RCM ordering |
//! | [`superpos`] | `morestress-superpos` | the linear-superposition baseline |
//! | [`chiplet`] | `morestress-chiplet` | the coarse package model driving sub-modeling |
//!
//! # Quickstart
//!
//! ```
//! use more_stress::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One-shot local stage for the paper's TSV (d=5, h=50, t=0.5, p=15 µm).
//! let geom = TsvGeometry::paper_defaults(15.0);
//! let sim = MoreStressSimulator::build(
//!     &geom,
//!     &BlockResolution::coarse(),
//!     InterpolationGrid::new([3, 3, 3]),
//!     &MaterialSet::tsv_defaults(),
//!     &SimulatorOptions::default(),
//! )?;
//! // Global stage: any array size / thermal load, in milliseconds.
//! let layout = BlockLayout::uniform(5, 5, BlockKind::Tsv);
//! let solution = sim.solve_array(&layout, -250.0, &GlobalBc::ClampedTopBottom)?;
//! let stress = sim.sample_midplane(&layout, &solution, -250.0, 10)?;
//! println!("peak von Mises: {:.1} MPa", stress.max());
//! # Ok(())
//! # }
//! ```

pub use morestress_chiplet as chiplet;
pub use morestress_core as rom;
pub use morestress_fem as fem;
pub use morestress_linalg as linalg;
pub use morestress_mesh as mesh;
pub use morestress_superpos as superpos;

/// The most common imports, bundled.
pub mod prelude {
    pub use morestress_chiplet::{
        standard_locations, ChipletGeometry, ChipletModel, ChipletResolution, Submodel,
    };
    pub use morestress_core::{
        sample_array_von_mises, GlobalBc, GlobalSolution, InterpolationGrid, LocalStage,
        LocalStageOptions, MoreStressSimulator, ReducedOrderModel, RomSolver, SimulatorOptions,
    };
    pub use morestress_fem::{
        normalized_mae, sample_von_mises, solve_thermal_stress, stress_at, write_field_csv,
        write_vtk, DirichletBcs, LinearSolver, Material, MaterialSet, PlaneGrid, ScalarField2d,
        StressSample,
    };
    pub use morestress_mesh::{
        array_mesh, unit_block_mesh, BlockKind, BlockLayout, BlockResolution, TsvGeometry,
    };
    pub use morestress_superpos::{reference_midplane_field, SuperpositionSolver};
}
