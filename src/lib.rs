//! **MORE-Stress** — Model Order Reduction based Efficient Numerical
//! Algorithm for Thermal Stress Simulation of TSV Arrays in 2.5D/3D IC.
//!
//! A from-scratch Rust reproduction of the DATE 2025 paper by Zhu, Wang,
//! Lin, Wang and Huang (arXiv:2411.12690). This facade crate re-exports the
//! whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`rom`] | `morestress-core` | the MORE-Stress algorithm: one-shot local stage, global stage with batched multi-load solves (`solve_array_many`), sub-modeling, reconstruction |
//! | [`fem`] | `morestress-fem` | the full-FEM reference solver ("ANSYS substitute"), materials, stress recovery, batched `solve_thermal_stress_many` |
//! | [`mesh`] | `morestress-mesh` | graded structured hex meshes of unit blocks, arrays and chiplet stacks |
//! | [`linalg`] | `morestress-linalg` | CSR, sparse Cholesky, CG, GMRES, RCM ordering, the unified `SolverBackend` layer with `FactorCache` and multi-RHS `solve_many`, and the shared `WorkPool` runtime every parallel stage runs on |
//! | [`superpos`] | `morestress-superpos` | the linear-superposition baseline |
//! | [`chiplet`] | `morestress-chiplet` | the coarse package model driving sub-modeling |
//! | [`campaign`] | `morestress-campaign` | the campaign front door: YAML scenario specs, the concurrent `CampaignRunner` job scheduler, JSON results, and the `morestress` CLI |
//!
//! Every linear solve in the workspace — reference FEM, ROM global stage,
//! chiplet coarse model — routes through `linalg`'s `SolverBackend` trait:
//! backends are *prepared* once per operator (factorization or
//! preconditioner build) and then solve any number of right-hand sides,
//! task-parallel for batches. A `FactorCache` memoizes prepared backends by
//! operator fingerprint, so re-solving the same lattice under new thermal
//! loads costs two triangular sweeps, not a new factorization.
//!
//! All task parallelism — the n+1 local solves, batched multi-RHS solves,
//! block-wise stress reconstruction — runs on one shared
//! [`WorkPool`](linalg::WorkPool): cap it with the `MORESTRESS_THREADS`
//! environment variable, or locally with `WorkPool::new(cap).install(||
//! ...)`. The cap bounds the pool's resident workers plus one calling
//! thread — it is a hard bound within any one call tree (nested stages
//! share the pool), while each *concurrent* application thread calling in
//! donates its own thread on top. Results are independent of the cap; the
//! `threads` knobs on the options structs only narrow a call below it.
//!
//! # Environment knobs
//!
//! Two environment variables tune the runtime without touching code; both
//! are also printed in the `morestress campaign run` header so logs record
//! the effective configuration:
//!
//! | Variable | Effect | Default |
//! |---|---|---|
//! | `MORESTRESS_THREADS` | Global [`WorkPool`](linalg::WorkPool) worker cap — the hard upper bound on resident workers for every parallel stage in the process. | `available_parallelism`, capped at 16 |
//! | `MORESTRESS_SHARDS` | Shard count used by the test/CI matrices and honored by examples that read it; library code takes shard counts explicitly ([`SimulatorBuilder::shards`](rom::SimulatorBuilder::shards)). | unset (suites pick their own default) |
//!
//! Every solve is **bitwise identical across caps**: `MORESTRESS_THREADS`
//! changes wall time, never results (pinned by the thread-invariance and
//! campaign determinism suites).
//!
//! # Quickstart
//!
//! ```
//! use more_stress::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One-shot local stage for the paper's TSV (d=5, h=50, t=0.5, p=15 µm).
//! let geom = TsvGeometry::paper_defaults(15.0);
//! let sim = MoreStressSimulator::builder(&geom)
//!     .resolution(BlockResolution::coarse())
//!     .interpolation([3, 3, 3])
//!     .materials(MaterialSet::tsv_defaults())
//!     .build()?;
//! // Global stage: any array size / thermal load, in milliseconds.
//! let layout = BlockLayout::uniform(4, 4, BlockKind::Tsv);
//! let solution = sim.solve_array(&layout, -250.0, &GlobalBc::ClampedTopBottom)?;
//! let stress = sim.sample_midplane(&layout, &solution, -250.0, 4)?;
//! println!("peak von Mises: {:.1} MPa", stress.max());
//!
//! // Batched: many thermal loads from ONE cached factorization.
//! let sweep = sim.solve_array_many(
//!     &layout,
//!     &[-250.0, -150.0, -50.0, 85.0],
//!     &GlobalBc::ClampedTopBottom,
//! )?;
//! assert_eq!(sweep.len(), 4);
//! assert_eq!(sim.factor_cache().misses(), 1); // solve_array reused it too
//! # Ok(())
//! # }
//! ```
//!
//! Larger, slower walkthroughs (array scaling sweeps, the chiplet
//! sub-modeling pipeline, convergence studies) are kept out of doctests and
//! live in `examples/` — run them with `cargo run --release --example
//! quickstart` etc.; the paper's tables regenerate with `cargo run -p
//! morestress-bench --bin repro --release`.

pub use morestress_campaign as campaign;
pub use morestress_chiplet as chiplet;
pub use morestress_core as rom;
pub use morestress_fem as fem;
pub use morestress_linalg as linalg;
pub use morestress_mesh as mesh;
pub use morestress_superpos as superpos;

/// The most common imports, bundled.
pub mod prelude {
    pub use morestress_campaign::{CampaignReport, CampaignRunner, CampaignSpec};
    pub use morestress_chiplet::{
        standard_locations, ChipletGeometry, ChipletModel, ChipletResolution, Submodel,
    };
    pub use morestress_core::{
        sample_array_von_mises, GlobalBc, GlobalSolution, InterpolationGrid, LocalStage,
        LocalStageOptions, MoreStressSimulator, ReducedOrderModel, RomSolver, SimulatorBuilder,
        SimulatorOptions,
    };
    pub use morestress_fem::{
        normalized_mae, sample_von_mises, solve_thermal_stress, solve_thermal_stress_many,
        stress_at, write_field_csv, write_vtk, DirichletBcs, LinearSolver, Material, MaterialSet,
        PlaneGrid, ScalarField2d, StressSample,
    };
    pub use morestress_linalg::{
        FactorCache, FillOrdering, KernelChoice, PreparedSolver, SolveReport, SolverBackend,
        VerifyPolicy, WorkPool,
    };
    pub use morestress_mesh::{
        array_mesh, unit_block_mesh, BlockKind, BlockLayout, BlockResolution, TsvGeometry,
    };
    pub use morestress_superpos::{reference_midplane_field, SuperpositionSolver};
}
